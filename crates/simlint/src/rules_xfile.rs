//! Pass 2: cross-file rules over the workspace item index.
//!
//! | rule | meaning |
//! |------|---------|
//! | R01  | registry name list ↔ builder arms disagree |
//! | R02  | builder arms ↔ enum variants disagree |
//! | R03  | enum variants ↔ dispatch-macro arms disagree |
//! | R04  | registry member not exercised by the differential-test leg |
//! | R05  | registry member not referenced by the figure-suite leg |
//! | P01  | heap allocation in a `[hotpath]` function |
//! | P02  | panicking call (`unwrap`/`expect`/`panic!`…) in a `[hotpath]` function |
//! | P03  | panicking (unchecked) indexing in a `[hotpath]` function |
//! | P04  | `dyn` dispatch in a `[hotpath]` function |
//!
//! The R-rules walk every `[registry.<id>]` in `simlint.toml` and require
//! each member to appear on every configured leg; any missing leg is an
//! error *naming the drifted side*, so the finding reads as a to-do list.
//! `[registry.<id>.exempt]` entries excuse a member from the reference
//! legs (R04/R05) with a mandatory reason; unused exemptions are dead
//! suppressions (X02, reported by the engine in `lib.rs`).
//!
//! The P-rules are deliberately lexical: they scan the token span of each
//! function named in `[hotpath]` (matched by path prefix + name, skipping
//! `mod tests`), not a call graph. Helpers a hot function calls must be
//! listed themselves — the `[hotpath]` list *is* the audited hot-path
//! inventory. `assert!`/`debug_assert!` are deliberately not P02: guarded
//! indexing with an assert naming the invariant is this repo's sanctioned
//! idiom (the differential batteries run with asserts on).

use crate::config::{path_prefix, Config, ItemRef, Registry};
use crate::diag::Diagnostic;
use crate::index::{FileIndex, FnDef, StrArm, WorkspaceIndex};
use crate::tokens::TokKind;

/// Raw cross-file findings plus the bookkeeping the dead-suppression rule
/// needs.
#[derive(Debug, Default)]
pub struct XfileAnalysis {
    /// Raw (pre-suppression) diagnostics.
    pub diags: Vec<Diagnostic>,
    /// `(registry index, exempt index)` pairs that excused a member.
    pub used_exempts: Vec<(usize, usize)>,
    /// Indices into `config.hotpath` that matched no function.
    pub dead_hotpath: Vec<usize>,
}

/// Runs every cross-file rule.
pub fn run_xfile(ws: &WorkspaceIndex, config: &Config) -> XfileAnalysis {
    let mut out = XfileAnalysis::default();
    for (ri, reg) in config.registries.iter().enumerate() {
        check_registry(ws, reg, ri, &mut out);
    }
    check_hotpaths(ws, config, &mut out);
    out
}

fn push(
    out: &mut Vec<Diagnostic>,
    file: &str,
    line: usize,
    rule: &'static str,
    message: String,
    fix: &str,
) {
    out.push(Diagnostic {
        file: file.to_owned(),
        line,
        col: 1,
        rule,
        message,
        fix: fix.to_owned(),
    });
}

// ---------------------------------------------------------------- R-rules

const R_FIX: &str = "wire the member through every registry leg (name list, enum, builder, \
                     dispatch, differential test, figure) or remove it from all of them";

fn check_registry(ws: &WorkspaceIndex, reg: &Registry, ri: usize, out: &mut XfileAnalysis) {
    let diags = &mut out.diags;

    // Resolve each configured leg; a leg that is configured but does not
    // resolve is itself drift (someone renamed or moved the item).
    let names = resolve(ws, reg, &reg.names, "names", "R01", |f, item| {
        f.const_array(item).map(|c| c.elems.clone())
    });
    let names = report_unresolved(names, diags);

    let variants = resolve(ws, reg, &reg.kinds, "kinds", "R02", |f, item| {
        f.enum_def(item).map(|e| e.variants.clone())
    });
    let variants = report_unresolved(variants, diags);

    let arms = resolve(ws, reg, &reg.builder, "builder", "R01", |f, item| {
        let arms: Vec<StrArm> = f.str_arms_in_fn(item).into_iter().cloned().collect();
        (!arms.is_empty()).then_some(arms)
    });
    let arms = report_unresolved(arms, diags);

    let dispatch_paths = resolve(ws, reg, &reg.dispatch, "dispatch", "R03", |f, item| {
        f.macro_def(item).map(|m| m.paths.clone())
    });
    let dispatch_paths = report_unresolved(dispatch_paths, diags);

    // R01: every listed name has a builder arm, every arm is listed.
    if let (Some((names_ref, names)), Some((builder_ref, arms))) = (&names, &arms) {
        for (name, line) in names {
            if !arms.iter().any(|a| &a.value == name) {
                push(
                    diags,
                    &names_ref.path,
                    *line,
                    "R01",
                    format!(
                        "registry `{}`: name \"{name}\" has no `{}` arm in {}",
                        reg.id, builder_ref.item, builder_ref.path
                    ),
                    R_FIX,
                );
            }
        }
        for a in arms {
            if !names.iter().any(|(n, _)| n == &a.value) {
                push(
                    diags,
                    &builder_ref.path,
                    a.line,
                    "R01",
                    format!(
                        "registry `{}`: builder arm \"{}\" is not listed in {} ({})",
                        reg.id, a.value, names_ref.item, names_ref.path
                    ),
                    R_FIX,
                );
            }
        }
    }

    // R02: every builder arm constructs a real variant, every variant has
    // a constructing arm.
    if let (Some((builder_ref, arms)), Some((kinds_ref, variants))) = (&arms, &variants) {
        for a in arms {
            if !variants.iter().any(|v| v.name == a.variant) {
                push(
                    diags,
                    &builder_ref.path,
                    a.line,
                    "R02",
                    format!(
                        "registry `{}`: builder arm \"{}\" constructs `{}::{}`, which is not \
                         a variant of `{}` ({})",
                        reg.id, a.value, kinds_ref.item, a.variant, kinds_ref.item, kinds_ref.path
                    ),
                    R_FIX,
                );
            }
        }
        for v in variants {
            if !arms.iter().any(|a| a.variant == v.name) {
                push(
                    diags,
                    &kinds_ref.path,
                    v.line,
                    "R02",
                    format!(
                        "registry `{}`: variant `{}::{}` is never constructed by `{}` ({})",
                        reg.id, kinds_ref.item, v.name, builder_ref.item, builder_ref.path
                    ),
                    R_FIX,
                );
            }
        }
    }

    // R03: the dispatch macro covers every variant, and only real ones.
    if let (Some((kinds_ref, variants)), Some((dispatch_ref, paths))) = (&variants, &dispatch_paths)
    {
        let relevant: Vec<_> = paths
            .iter()
            .filter(|p| p.enum_name == kinds_ref.item)
            .collect();
        for v in variants {
            if !relevant.iter().any(|p| p.variant == v.name) {
                push(
                    diags,
                    &kinds_ref.path,
                    v.line,
                    "R03",
                    format!(
                        "registry `{}`: variant `{}::{}` is missing from dispatch macro \
                         `{}!` ({})",
                        reg.id, kinds_ref.item, v.name, dispatch_ref.item, dispatch_ref.path
                    ),
                    R_FIX,
                );
            }
        }
        for p in &relevant {
            if !variants.iter().any(|v| v.name == p.variant) {
                push(
                    diags,
                    &dispatch_ref.path,
                    p.line,
                    "R03",
                    format!(
                        "registry `{}`: dispatch macro `{}!` names `{}::{}`, which is not a \
                         variant of `{}` ({})",
                        reg.id,
                        dispatch_ref.item,
                        kinds_ref.item,
                        p.variant,
                        kinds_ref.item,
                        kinds_ref.path
                    ),
                    R_FIX,
                );
            }
        }
    }

    // R04/R05: every member is referenced from the test / figure legs.
    if let Some((kinds_ref, variants)) = &variants {
        let member_name = |variant: &str| -> String {
            arms.as_ref()
                .and_then(|(_, arms)| {
                    arms.iter()
                        .find(|a| a.variant == variant)
                        .map(|a| a.value.clone())
                })
                .unwrap_or_else(|| variant.to_lowercase())
        };
        for (rule, leg, leg_name) in [
            ("R04", &reg.tests, "differential-test"),
            ("R05", &reg.figures, "figure-suite"),
        ] {
            if leg.is_empty() {
                continue;
            }
            let files: Vec<&FileIndex> = ws
                .files
                .iter()
                .filter(|(rel, _)| leg.iter().any(|p| path_prefix(rel, p)))
                .map(|(_, f)| f)
                .collect();
            for v in variants {
                let name = member_name(&v.name);
                let ident_hit = files.iter().any(|f| {
                    f.idents.contains(&v.name)
                        || v.payload.as_ref().is_some_and(|p| f.idents.contains(p))
                });
                // Figure tables reference policies by display string
                // ("SRRIP", "Hawkeye"), so R05 also accepts a
                // case-insensitive string-literal match.
                let string_hit = rule == "R05"
                    && files.iter().any(|f| {
                        f.strings_lower.contains(&name)
                            || f.strings_lower.contains(&v.name.to_lowercase())
                    });
                if ident_hit || string_hit {
                    continue;
                }
                if let Some(ei) = reg.exempt.iter().position(|e| e.name == name) {
                    out.used_exempts.push((ri, ei));
                    continue;
                }
                let payload = v
                    .payload
                    .as_deref()
                    .map(|p| format!(" (payload `{p}`)"))
                    .unwrap_or_default();
                let rule_static: &'static str = if rule == "R04" { "R04" } else { "R05" };
                push(
                    diags,
                    &kinds_ref.path,
                    v.line,
                    rule_static,
                    format!(
                        "registry `{}`: member \"{name}\"{payload} is not referenced by the \
                         {leg_name} leg ({})",
                        reg.id,
                        leg.join(", ")
                    ),
                    R_FIX,
                );
            }
        }
    }
}

type Resolved<'a, T> = Option<(&'a ItemRef, T)>;

/// Resolves one leg reference; `Err` carries the diagnostic for a
/// configured-but-unresolvable leg.
#[allow(clippy::type_complexity)] // one call site per leg, the tuple is local plumbing
fn resolve<'a, T>(
    ws: &'a WorkspaceIndex,
    reg: &'a Registry,
    leg: &'a Option<ItemRef>,
    leg_name: &str,
    rule: &'static str,
    extract: impl Fn(&'a FileIndex, &str) -> Option<T>,
) -> Result<Resolved<'a, T>, Diagnostic> {
    let Some(item_ref) = leg else {
        return Ok(None);
    };
    let Some(file) = ws.file(&item_ref.path) else {
        return Err(Diagnostic {
            file: "simlint.toml".to_owned(),
            line: reg.line,
            col: 1,
            rule,
            message: format!(
                "registry `{}`: {leg_name} leg points at `{}`, which is not in the workspace \
                 walk",
                reg.id, item_ref.path
            ),
            fix: "update the [registry] leg to the item's new location".to_owned(),
        });
    };
    match extract(file, &item_ref.item) {
        Some(t) => Ok(Some((item_ref, t))),
        None => Err(Diagnostic {
            file: item_ref.path.clone(),
            line: 1,
            col: 1,
            rule,
            message: format!(
                "registry `{}`: {leg_name} leg `{}` not found in {} (renamed or removed?)",
                reg.id, item_ref.item, item_ref.path
            ),
            fix: "update the [registry] leg to the item's new name".to_owned(),
        }),
    }
}

fn report_unresolved<'a, T>(
    r: Result<Resolved<'a, T>, Diagnostic>,
    diags: &mut Vec<Diagnostic>,
) -> Resolved<'a, T> {
    match r {
        Ok(v) => v,
        Err(d) => {
            diags.push(d);
            None
        }
    }
}

// ---------------------------------------------------------------- P-rules

const P01_FIX: &str = "preallocate in the constructor or reuse a scratch buffer owned by the \
                       policy; per-access heap traffic breaks the hot-path contract";
const P02_FIX: &str = "make the invariant explicit without a panic path (unwrap_or, match, \
                       fold); per-access panics hide corruption until deep into a run";
const P03_FIX: &str = "use checked indexing, or keep the assert-guarded pattern and justify \
                       the file once with a central [allow.P03] entry naming the invariant";
const P04_FIX: &str = "use enum dispatch (see core::policy_kind) instead of trait objects on \
                       the per-access path";

/// Containers whose constructors allocate.
const ALLOC_TYPES: [&str; 8] = [
    "Vec", "Box", "String", "BTreeMap", "BTreeSet", "VecDeque", "HashMap", "HashSet",
];
/// Allocating constructor method names on those containers.
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];
/// Allocating methods called on a receiver.
const ALLOC_METHODS: [&str; 5] = ["collect", "to_vec", "to_owned", "to_string", "clone"];
/// Panicking macros (the assert family is deliberately absent — see the
/// module docs).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn check_hotpaths(ws: &WorkspaceIndex, config: &Config, out: &mut XfileAnalysis) {
    for (hi, hp) in config.hotpath.iter().enumerate() {
        let mut matched = false;
        for (rel, fidx) in &ws.files {
            if !path_prefix(rel, &hp.path) {
                continue;
            }
            for f in fidx.fns_named(&hp.func) {
                matched = true;
                check_hot_fn(rel, fidx, f, &mut out.diags);
            }
        }
        if !matched {
            out.dead_hotpath.push(hi);
        }
    }
}

fn check_hot_fn(rel: &str, fidx: &FileIndex, f: &FnDef, diags: &mut Vec<Diagnostic>) {
    let toks = &fidx.tokens;
    let (start, end) = f.tok_range;
    let hot =
        |construct: &str, what: &str| format!("{what} (`{construct}`) in hot-path fn `{}`", f.name);
    for k in start..=end {
        let t = &toks[k];
        let next = toks.get(k + 1);
        let next2 = toks.get(k + 2);
        let prev = (k > start).then(|| &toks[k - 1]);
        match &t.kind {
            TokKind::Ident => {
                let bang = next.is_some_and(|n| n.is_punct('!'));
                // P01: vec!/format! and Type::{new,with_capacity,from}.
                if bang && (t.text == "vec" || t.text == "format") {
                    push(
                        diags,
                        rel,
                        t.line,
                        "P01",
                        hot(&format!("{}!", t.text), "heap allocation"),
                        P01_FIX,
                    );
                } else if ALLOC_TYPES.contains(&t.text.as_str())
                    && next.is_some_and(|n| n.is_punct(':'))
                    && next2.is_some_and(|n| n.is_punct(':'))
                    && toks.get(k + 3).is_some_and(|m| {
                        m.kind == TokKind::Ident && ALLOC_CTORS.contains(&m.text.as_str())
                    })
                {
                    push(
                        diags,
                        rel,
                        t.line,
                        "P01",
                        hot(
                            &format!("{}::{}", t.text, toks[k + 3].text),
                            "heap allocation",
                        ),
                        P01_FIX,
                    );
                } else if bang && PANIC_MACROS.contains(&t.text.as_str()) {
                    push(
                        diags,
                        rel,
                        t.line,
                        "P02",
                        hot(&format!("{}!", t.text), "panicking call"),
                        P02_FIX,
                    );
                } else if t.text == "dyn" {
                    push(
                        diags,
                        rel,
                        t.line,
                        "P04",
                        hot("dyn", "dynamic dispatch"),
                        P04_FIX,
                    );
                } else if prev.is_some_and(|p| p.is_punct('.'))
                    && next.is_some_and(|n| n.is_punct('('))
                {
                    // Method calls: allocating (P01) or panicking (P02).
                    if ALLOC_METHODS.contains(&t.text.as_str()) {
                        push(
                            diags,
                            rel,
                            t.line,
                            "P01",
                            hot(&format!(".{}()", t.text), "heap allocation"),
                            P01_FIX,
                        );
                    } else if t.text == "unwrap" || t.text == "expect" {
                        push(
                            diags,
                            rel,
                            t.line,
                            "P02",
                            hot(&format!(".{}()", t.text), "panicking call"),
                            P02_FIX,
                        );
                    }
                }
            }
            TokKind::Punct('[') => {
                // P03: indexing — `expr[...]` has an identifier, `]`, or
                // `)` immediately before the bracket; array literals and
                // types (`[0u64; N]`, `[&str; N]`, `#[attr]`) do not.
                let indexes = prev.is_some_and(|p| {
                    p.kind == TokKind::Ident || p.is_punct(']') || p.is_punct(')')
                });
                if indexes {
                    push(
                        diags,
                        rel,
                        t.line,
                        "P03",
                        hot("expr[..]", "panicking (unchecked) indexing"),
                        P03_FIX,
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::index_file;

    fn ws(files: &[(&str, &str)]) -> WorkspaceIndex {
        WorkspaceIndex {
            files: files
                .iter()
                .map(|(rel, src)| ((*rel).to_owned(), index_file(src)))
                .collect(),
        }
    }

    fn cfg(toml: &str) -> Config {
        Config::parse(toml).expect("test config parses")
    }

    const REG_TOML: &str = r#"
[registry.zoo]
names = "a.rs#NAMES"
kinds = "a.rs#Kind"
builder = "a.rs#by_name"
dispatch = "a.rs#each"
tests = ["t.rs"]
figures = ["g.rs"]
"#;

    const CONSISTENT: &str = r#"
pub const NAMES: [&str; 2] = ["lru", "fifo"];
pub enum Kind { Lru(Lru), Fifo(Fifo) }
macro_rules! each {
    ($s:expr, $p:ident => $b:expr) => {
        match $s { Kind::Lru($p) => $b, Kind::Fifo($p) => $b }
    };
}
impl Kind {
    pub fn by_name(n: &str) -> Option<Self> {
        Some(match n {
            "lru" => Self::Lru(Lru::new()),
            "fifo" => Self::Fifo(Fifo::new()),
            _ => return None,
        })
    }
}
"#;

    #[test]
    fn consistent_registry_is_clean() {
        let w = ws(&[
            ("a.rs", CONSISTENT),
            ("t.rs", "fn t() { let _ = (Lru::new(), Fifo::new()); }"),
            ("g.rs", "fn g() { plot(\"LRU\", \"FIFO\"); }"),
        ]);
        let a = run_xfile(&w, &cfg(REG_TOML));
        assert!(a.diags.is_empty(), "{:?}", a.diags);
    }

    #[test]
    fn r01_fires_both_directions() {
        // "ghost" listed but no arm; arm "fifo" not listed.
        let src = CONSISTENT.replace(
            "pub const NAMES: [&str; 2] = [\"lru\", \"fifo\"];",
            "pub const NAMES: [&str; 2] = [\"lru\", \"ghost\"];",
        );
        let w = ws(&[
            ("a.rs", &src),
            ("t.rs", "fn t() { Lru::new(); Fifo::new(); }"),
            ("g.rs", "fn g() { plot(\"lru\", \"fifo\"); }"),
        ]);
        let a = run_xfile(&w, &cfg(REG_TOML));
        let r01: Vec<_> = a.diags.iter().filter(|d| d.rule == "R01").collect();
        assert_eq!(r01.len(), 2, "{:?}", a.diags);
        assert!(r01.iter().any(|d| d.message.contains("\"ghost\"")));
        assert!(r01.iter().any(|d| d.message.contains("\"fifo\"")));
    }

    #[test]
    fn r02_catches_unconstructed_variant() {
        let src = CONSISTENT.replace(
            "pub enum Kind { Lru(Lru), Fifo(Fifo) }",
            "pub enum Kind { Lru(Lru), Fifo(Fifo), Ghost(GhostP) }",
        );
        let w = ws(&[
            ("a.rs", &src),
            (
                "t.rs",
                "fn t() { let _ = (Lru::new(), Fifo::new(), GhostP::new()); }",
            ),
            ("g.rs", "fn g() { plot(\"lru\", \"fifo\", \"ghost\"); }"),
        ]);
        let a = run_xfile(&w, &cfg(REG_TOML));
        assert!(
            a.diags
                .iter()
                .any(|d| d.rule == "R02" && d.message.contains("Ghost")),
            "{:?}",
            a.diags
        );
        // The dispatch macro also lacks the new variant.
        assert!(a.diags.iter().any(|d| d.rule == "R03"));
    }

    #[test]
    fn r03_catches_missing_dispatch_arm() {
        let src = CONSISTENT.replace("Kind::Fifo($p) => $b ", "");
        let w = ws(&[
            ("a.rs", &src),
            ("t.rs", "fn t() { let _ = (Lru::new(), Fifo::new()); }"),
            ("g.rs", "fn g() { plot(\"lru\", \"fifo\"); }"),
        ]);
        let a = run_xfile(&w, &cfg(REG_TOML));
        let r03: Vec<_> = a.diags.iter().filter(|d| d.rule == "R03").collect();
        assert_eq!(r03.len(), 1, "{:?}", a.diags);
        assert!(r03[0].message.contains("Fifo"), "{:?}", r03[0]);
    }

    #[test]
    fn r04_requires_test_leg_reference() {
        let w = ws(&[
            ("a.rs", CONSISTENT),
            ("t.rs", "fn t() { Lru::new(); }"), // Fifo untested
            ("g.rs", "fn g() { plot(\"lru\", \"fifo\"); }"),
        ]);
        let a = run_xfile(&w, &cfg(REG_TOML));
        let r04: Vec<_> = a.diags.iter().filter(|d| d.rule == "R04").collect();
        assert_eq!(r04.len(), 1, "{:?}", a.diags);
        assert!(r04[0].message.contains("\"fifo\""));
    }

    #[test]
    fn r05_accepts_case_insensitive_strings_and_exempts() {
        // Figures reference LRU only by display string; fifo not at all.
        let w = ws(&[
            ("a.rs", CONSISTENT),
            ("t.rs", "fn t() { Lru::new(); Fifo::new(); }"),
            ("g.rs", "fn g() { plot(\"LRU\"); }"),
        ]);
        let a = run_xfile(&w, &cfg(REG_TOML));
        let r05: Vec<_> = a.diags.iter().filter(|d| d.rule == "R05").collect();
        assert_eq!(r05.len(), 1, "{:?}", a.diags);
        assert!(r05[0].message.contains("\"fifo\""));

        let exempted = format!("{REG_TOML}\n[registry.zoo.exempt]\n\"fifo\" = \"not plotted\"\n");
        let a = run_xfile(&w, &cfg(&exempted));
        assert!(a.diags.iter().all(|d| d.rule != "R05"), "{:?}", a.diags);
        assert_eq!(a.used_exempts, vec![(0, 0)]);
    }

    #[test]
    fn unresolved_legs_are_reported() {
        let toml = "[registry.zoo]\nnames = \"a.rs#NO_SUCH\"\nkinds = \"missing.rs#Kind\"\n";
        let w = ws(&[("a.rs", CONSISTENT)]);
        let a = run_xfile(&w, &cfg(toml));
        assert!(a.diags.iter().any(|d| d.rule == "R01" && d.file == "a.rs"));
        assert!(a
            .diags
            .iter()
            .any(|d| d.rule == "R02" && d.file == "simlint.toml"));
    }

    const HOT_TOML: &str = "[hotpath]\nfunctions = [\"h.rs#hot\"]\n";

    #[test]
    fn p01_flags_allocation_forms() {
        let src = "fn hot() {\n    let v: Vec<u8> = Vec::new();\n    let s = format!(\"x\");\n    let c = xs.iter().map(f).collect();\n}\n";
        let a = run_xfile(&ws(&[("h.rs", src)]), &cfg(HOT_TOML));
        let p01: Vec<_> = a.diags.iter().filter(|d| d.rule == "P01").collect();
        assert_eq!(p01.len(), 3, "{:?}", a.diags);
    }

    #[test]
    fn p02_flags_panics_but_not_asserts() {
        let src = "fn hot(x: Option<u8>) {\n    assert!(true, \"fine\");\n    let _ = x.unwrap();\n    let _ = x.expect(\"boom\");\n    panic!(\"no\");\n}\n";
        let a = run_xfile(&ws(&[("h.rs", src)]), &cfg(HOT_TOML));
        let p02: Vec<_> = a.diags.iter().filter(|d| d.rule == "P02").collect();
        assert_eq!(p02.len(), 3, "{:?}", a.diags);
    }

    #[test]
    fn p03_flags_indexing_but_not_literals() {
        let src = "fn hot(xs: &[u64], i: usize) -> u64 {\n    let a = [0u64; 4];\n    let t: [u8; 2] = [1, 2];\n    xs[i] + a[0] + u64::from(t[1])\n}\n";
        let a = run_xfile(&ws(&[("h.rs", src)]), &cfg(HOT_TOML));
        let p03: Vec<_> = a.diags.iter().filter(|d| d.rule == "P03").collect();
        assert_eq!(p03.len(), 3, "{:?}", a.diags);
        assert!(p03.iter().all(|d| d.line == 4), "{:?}", p03);
    }

    #[test]
    fn p04_flags_dyn() {
        let src = "fn hot(p: &dyn Policy) { p.tick(); }\n";
        let a = run_xfile(&ws(&[("h.rs", src)]), &cfg(HOT_TOML));
        assert_eq!(a.diags.iter().filter(|d| d.rule == "P04").count(), 1);
    }

    #[test]
    fn hotpath_skips_test_mods_and_reports_dead_entries() {
        let src = "fn cold() {}\nmod tests {\n    fn hot() { let v = Vec::new(); let _ = v; }\n}\n";
        let a = run_xfile(&ws(&[("h.rs", src)]), &cfg(HOT_TOML));
        assert!(a.diags.is_empty(), "{:?}", a.diags);
        assert_eq!(a.dead_hotpath, vec![0], "test-mod fn does not count");
    }

    #[test]
    fn hotpath_dir_prefix_matches_many_files() {
        let toml = "[hotpath]\nfunctions = [\"pol#tick\"]\n";
        let w = ws(&[
            ("pol/a.rs", "fn tick() { let b = Box::new(1); let _ = b; }"),
            ("pol/b.rs", "fn tick() {}"),
        ]);
        let a = run_xfile(&w, &cfg(toml));
        assert_eq!(a.diags.iter().filter(|d| d.rule == "P01").count(), 1);
        assert!(a.dead_hotpath.is_empty());
    }
}
