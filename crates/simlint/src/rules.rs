//! The per-file lint rules.
//!
//! | rule | meaning |
//! |------|---------|
//! | D01  | default-hasher `HashMap`/`HashSet` in a deterministic crate |
//! | D02  | wall-clock time (`Instant`, `SystemTime`) in simulator code |
//! | D03  | ad-hoc concurrency (`Mutex`, `thread::spawn`, atomics) outside the pool |
//! | D04  | `env::var` outside documented knobs |
//! | S01  | `unsafe` without a `// SAFETY:` comment |
//! | S02  | `#[allow(...)]` without a justification comment |
//! | S03  | `catch_unwind` outside the fault-isolation layer |
//! | X01  | malformed `simlint: allow` (missing `-- reason`) |
//!
//! The cross-file rules (R01–R05, P01–P04, X02) live in
//! [`crate::rules_xfile`] and the engine in `lib.rs`. Every rule honours
//! in-source suppressions of the form `// simlint: allow(Dxx) -- reason`
//! and the central path allowlists from `simlint.toml`; X01 and X02 are
//! the meta-rules and cannot be suppressed.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::scan::{find_word, find_word_prefix, Scanned};

/// One-line descriptions of every rule id, for the SARIF rule table and
/// the README.
pub const RULE_DESCRIPTIONS: [(&str, &str); 18] = [
    (
        "D01",
        "default-hasher HashMap/HashSet in a deterministic crate",
    ),
    ("D02", "wall-clock time source in simulator code"),
    ("D03", "ad-hoc concurrency outside the deterministic pool"),
    ("D04", "environment-variable read outside documented knobs"),
    ("S01", "unsafe without a SAFETY: comment"),
    ("S02", "#[allow(...)] without a justification comment"),
    ("S03", "catch_unwind outside the fault-isolation layer"),
    ("X01", "malformed simlint suppression (missing -- reason)"),
    ("X02", "dead suppression: matched zero diagnostics this run"),
    ("R01", "registry name list and builder arms disagree"),
    ("R02", "registry builder arms and enum variants disagree"),
    (
        "R03",
        "registry enum variants and dispatch-macro arms disagree",
    ),
    (
        "R04",
        "registry member not exercised by the differential-test leg",
    ),
    (
        "R05",
        "registry member not referenced by the figure-suite leg",
    ),
    ("P01", "heap allocation in a [hotpath] function"),
    ("P02", "panicking call in a [hotpath] function"),
    (
        "P03",
        "panicking (unchecked) indexing in a [hotpath] function",
    ),
    ("P04", "dyn dispatch in a [hotpath] function"),
];

/// The one-line description for a rule id (empty for unknown ids).
pub fn rule_description(rule: &str) -> &'static str {
    RULE_DESCRIPTIONS
        .iter()
        .find(|(id, _)| *id == rule)
        .map(|(_, d)| *d)
        .unwrap_or("")
}

/// Collects the raw (pre-suppression) per-file diagnostics. The engine in
/// `lib.rs` applies suppression filtering itself so it can track which
/// suppressions were used (rule X02); [`lint_scanned`] applies it inline.
pub(crate) fn raw_file_rules(
    rel_path: &str,
    scanned: &Scanned,
    config: &Config,
    raw: &mut Vec<Diagnostic>,
) {
    rule_d01(rel_path, scanned, config, raw);
    rule_d02(rel_path, scanned, raw);
    rule_d03(rel_path, scanned, raw);
    rule_d04(rel_path, scanned, raw);
    rule_s01(rel_path, scanned, raw);
    rule_s02(rel_path, scanned, raw);
    rule_s03(rel_path, scanned, raw);
}

/// Runs every per-file rule over one scanned file. `rel_path` is
/// workspace-relative with forward slashes.
pub fn lint_scanned(rel_path: &str, scanned: &Scanned, config: &Config) -> Vec<Diagnostic> {
    let mut raw: Vec<Diagnostic> = Vec::new();
    raw_file_rules(rel_path, scanned, config, &mut raw);

    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| !scanned.is_suppressed(d.rule, d.line))
        .filter(|d| !config.is_path_allowed(d.rule, rel_path))
        .collect();

    // X01 last, and exempt from suppression: a suppression that cannot
    // justify itself must not be able to hide the complaint about it.
    rule_x01(rel_path, scanned, &mut out);

    out.sort_by_key(|d| (d.line, d.col, d.rule));
    out
}

fn push(
    out: &mut Vec<Diagnostic>,
    file: &str,
    line: usize,
    col0: usize,
    rule: &'static str,
    message: String,
    fix: &str,
) {
    out.push(Diagnostic {
        file: file.to_owned(),
        line,
        col: col0 + 1,
        rule,
        message,
        fix: fix.to_owned(),
    });
}

/// D01: `std::collections::HashMap`/`HashSet` (RandomState seeds per
/// process, so iteration order varies run to run) in deterministic crates.
/// Flags fully-qualified uses anywhere, and — once a `use
/// std::collections::…` import of the name is seen — every later use of
/// the bare name in the file.
fn rule_d01(rel_path: &str, scanned: &Scanned, config: &Config, out: &mut Vec<Diagnostic>) {
    if !config.is_deterministic(rel_path) {
        return;
    }
    const FIX: &str = "use BTreeMap/BTreeSet (required when iteration order can reach output), \
                       or sim_support::DetHashMap/DetHashSet for lookup-only hot paths";
    for name in ["HashMap", "HashSet"] {
        // Pass 1: is the bare name imported from std::collections?
        let imported = scanned.lines.iter().any(|l| {
            l.code.contains("use ")
                && l.code.contains("std::collections::")
                && !find_word(&l.code, name).is_empty()
        });
        for (idx, l) in scanned.lines.iter().enumerate() {
            for col in find_word(&l.code, name) {
                let qualified = l.code[..col].ends_with("collections::");
                if qualified || imported {
                    push(
                        out,
                        rel_path,
                        idx + 1,
                        col,
                        "D01",
                        format!("std::collections::{name} with the default (randomly seeded) hasher in a deterministic crate"),
                        FIX,
                    );
                }
            }
        }
    }
}

/// D02: wall-clock time sources in simulator code.
fn rule_d02(rel_path: &str, scanned: &Scanned, out: &mut Vec<Diagnostic>) {
    const FIX: &str = "keep wall-clock in the bench harness (sim_support::bench) or a bin \
                       wrapper; simulated results must never depend on host time";
    for (idx, l) in scanned.lines.iter().enumerate() {
        for word in ["Instant", "SystemTime"] {
            for col in find_word(&l.code, word) {
                push(
                    out,
                    rel_path,
                    idx + 1,
                    col,
                    "D02",
                    format!("wall-clock time source `{word}` in simulator code"),
                    FIX,
                );
            }
        }
    }
}

/// D03: ad-hoc concurrency primitives outside `sim_support::pool`.
fn rule_d03(rel_path: &str, scanned: &Scanned, out: &mut Vec<Diagnostic>) {
    const FIX: &str = "route parallelism through sim_support::pool (submission-ordered \
                       par_map keeps results independent of thread count)";
    for (idx, l) in scanned.lines.iter().enumerate() {
        for word in ["Mutex", "RwLock", "Condvar"] {
            for col in find_word(&l.code, word) {
                push(
                    out,
                    rel_path,
                    idx + 1,
                    col,
                    "D03",
                    format!("shared-state primitive `{word}` outside the deterministic pool"),
                    FIX,
                );
            }
        }
        for col in find_word_prefix(&l.code, "thread::spawn") {
            push(
                out,
                rel_path,
                idx + 1,
                col,
                "D03",
                "raw `thread::spawn` outside the deterministic pool".to_owned(),
                FIX,
            );
        }
        for col in find_word_prefix(&l.code, "Atomic") {
            push(
                out,
                rel_path,
                idx + 1,
                col,
                "D03",
                "raw atomic outside the deterministic pool".to_owned(),
                FIX,
            );
        }
    }
}

/// D04: environment-variable reads outside documented knobs.
fn rule_d04(rel_path: &str, scanned: &Scanned, out: &mut Vec<Diagnostic>) {
    const FIX: &str = "either plumb the value as a parameter, or document the knob and add \
                       `// simlint: allow(D04) -- <where it is documented>`";
    for (idx, l) in scanned.lines.iter().enumerate() {
        for col in find_word_prefix(&l.code, "env::var") {
            push(
                out,
                rel_path,
                idx + 1,
                col,
                "D04",
                "environment variable read; hidden inputs undermine reproducibility".to_owned(),
                FIX,
            );
        }
    }
}

/// S01: `unsafe` requires a `// SAFETY:` comment on the same line or in
/// the contiguous comment block above.
fn rule_s01(rel_path: &str, scanned: &Scanned, out: &mut Vec<Diagnostic>) {
    const FIX: &str = "state the invariant that makes this sound in a `// SAFETY:` comment \
                       directly above (or on) the unsafe line";
    for (idx, l) in scanned.lines.iter().enumerate() {
        for col in find_word(&l.code, "unsafe") {
            if !scanned.has_safety_comment(idx + 1) {
                push(
                    out,
                    rel_path,
                    idx + 1,
                    col,
                    "S01",
                    "`unsafe` without a `// SAFETY:` justification".to_owned(),
                    FIX,
                );
            }
        }
    }
}

/// S02: `#[allow(...)]` / `#![allow(...)]` requires a justification
/// comment — trailing on the same line, or a plain (non-doc) comment line
/// directly above. Doc comments do not count: they describe the item, not
/// the exemption.
fn rule_s02(rel_path: &str, scanned: &Scanned, out: &mut Vec<Diagnostic>) {
    const FIX: &str = "append `// <why this allow is sound>` to the attribute line, or fix \
                       the lint instead of allowing it";
    for (idx, l) in scanned.lines.iter().enumerate() {
        let Some(col) = l.code.find("#[allow(").or_else(|| l.code.find("#![allow(")) else {
            continue;
        };
        let same_line = l.has_comment() && !l.doc_comment;
        let above = idx > 0 && {
            let p = &scanned.lines[idx - 1];
            p.is_comment_only() && p.has_comment() && !p.doc_comment
        };
        if !(same_line || above) {
            push(
                out,
                rel_path,
                idx + 1,
                col,
                "S02",
                "`#[allow(...)]` without a justification comment".to_owned(),
                FIX,
            );
        }
    }
}

/// S03: `catch_unwind` outside the fault-isolation layer. Swallowing
/// panics anywhere else hides bugs and can leave shared state poisoned
/// mid-update; the blessed call sites (`sim_support::fault`,
/// `sim_support::pool`, and the test harnesses built on them) live on the
/// central allowlist in `simlint.toml`.
fn rule_s03(rel_path: &str, scanned: &Scanned, out: &mut Vec<Diagnostic>) {
    const FIX: &str = "route panic capture through sim_support::fault::isolated or \
                       pool::try_par_map, which classify the payload and keep retry \
                       deterministic; do not swallow panics ad hoc";
    for (idx, l) in scanned.lines.iter().enumerate() {
        for col in find_word(&l.code, "catch_unwind") {
            push(
                out,
                rel_path,
                idx + 1,
                col,
                "S03",
                "`catch_unwind` outside the fault-isolation layer".to_owned(),
                FIX,
            );
        }
    }
}

/// X01: a `simlint: allow` comment that is missing its `-- reason` (or an
/// intelligible rule list). Such comments also do not suppress anything.
pub(crate) fn rule_x01(rel_path: &str, scanned: &Scanned, out: &mut Vec<Diagnostic>) {
    const FIX: &str = "write `// simlint: allow(RULE, ...) -- reason`; the reason is mandatory";
    for s in &scanned.suppressions {
        if s.reason.is_none() || s.rules.is_empty() {
            push(
                out,
                rel_path,
                s.line,
                0,
                "X01",
                "malformed simlint suppression: missing `-- reason`".to_owned(),
                FIX,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn lint(rel_path: &str, src: &str) -> Vec<Diagnostic> {
        lint_scanned(rel_path, &scan(src), &Config::default())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d01_fires_only_in_deterministic_crates() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let hits = lint("crates/btb/src/x.rs", src);
        assert_eq!(rules_of(&hits), vec!["D01", "D01", "D01"]);
        assert_eq!(hits[0].line, 1);
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn d01_ignores_det_and_btree_variants() {
        let src = "use sim_support::DetHashMap;\nuse std::collections::BTreeMap;\n\
                   fn f() { let m: DetHashMap<u8, u8> = DetHashMap::default(); }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn d02_flags_instant_and_systemtime() {
        let src = "use std::time::Instant;\nlet t = Instant::now();\nlet s = SystemTime::now();\n";
        assert_eq!(
            rules_of(&lint("crates/core/src/x.rs", src)),
            vec!["D02", "D02", "D02"]
        );
    }

    #[test]
    fn d03_flags_concurrency_primitives() {
        let src = "use std::sync::Mutex;\nstd::thread::spawn(|| {});\n\
                   use std::sync::atomic::AtomicUsize;\n";
        let hits = lint("tests/x.rs", src);
        assert_eq!(rules_of(&hits), vec!["D03", "D03", "D03"]);
    }

    #[test]
    fn d04_flags_env_reads() {
        let src = "let v = std::env::var(\"THERMO_X\");\n";
        assert_eq!(rules_of(&lint("crates/bench/src/x.rs", src)), vec!["D04"]);
    }

    #[test]
    fn s01_requires_safety_comment() {
        let naked = "let x = unsafe { p.read() };\n";
        assert_eq!(
            rules_of(&lint("crates/sim-support/src/x.rs", naked)),
            vec!["S01"]
        );
        let justified =
            "// SAFETY: p is valid for reads; see alloc above.\nlet x = unsafe { p.read() };\n";
        assert!(lint("crates/sim-support/src/x.rs", justified).is_empty());
    }

    #[test]
    fn s02_requires_justification() {
        let naked = "#[allow(dead_code)]\nfn f() {}\n";
        assert_eq!(rules_of(&lint("crates/core/src/x.rs", naked)), vec!["S02"]);
        let trailing = "#[allow(dead_code)] // kept for the table-3 ablation\nfn f() {}\n";
        assert!(lint("crates/core/src/x.rs", trailing).is_empty());
        let above = "// kept for the table-3 ablation\n#[allow(dead_code)]\nfn f() {}\n";
        assert!(lint("crates/core/src/x.rs", above).is_empty());
        let doc_only = "/// Docs describing the item.\n#[allow(dead_code)]\nfn f() {}\n";
        assert_eq!(
            rules_of(&lint("crates/core/src/x.rs", doc_only)),
            vec!["S02"]
        );
    }

    #[test]
    fn s03_flags_catch_unwind_everywhere_by_default() {
        let src = "let r = std::panic::catch_unwind(|| work());\n";
        assert_eq!(rules_of(&lint("crates/core/src/x.rs", src)), vec!["S03"]);
        // The blessed sites are exempted by path, not by the rule itself.
        let mut cfg = Config::default();
        cfg.allows
            .entry("S03".to_owned())
            .or_default()
            .push(crate::config::PathAllow {
                path: "crates/sim-support/src/fault.rs".to_owned(),
                reason: "the fault-isolation layer".to_owned(),
                line: 0,
            });
        assert!(lint_scanned("crates/sim-support/src/fault.rs", &scan(src), &cfg).is_empty());
    }

    #[test]
    fn suppression_with_reason_silences_but_without_reason_is_x01() {
        let ok = "use std::sync::Mutex; // simlint: allow(D03) -- serializes test output only\n";
        assert!(lint("tests/x.rs", ok).is_empty());
        let bad = "use std::sync::Mutex; // simlint: allow(D03)\n";
        let hits = lint("tests/x.rs", bad);
        // Same line; X01 anchors at column 1 so it sorts first.
        assert_eq!(rules_of(&hits), vec!["X01", "D03"]);
    }

    #[test]
    fn standalone_suppression_covers_the_next_line() {
        let src = "// simlint: allow(D04) -- documented knob (EXPERIMENTS.md)\n\
                   let v = std::env::var(\"THERMO_X\");\n";
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn central_allowlist_exempts_paths() {
        let mut cfg = Config::default();
        cfg.allows
            .entry("D02".to_owned())
            .or_default()
            .push(crate::config::PathAllow {
                path: "crates/bench/src/grid.rs".to_owned(),
                reason: "timing harness".to_owned(),
                line: 0,
            });
        let src = "let t = Instant::now();\n";
        assert!(lint_scanned("crates/bench/src/grid.rs", &scan(src), &cfg).is_empty());
        assert_eq!(
            rules_of(&lint_scanned("crates/bench/src/scale.rs", &scan(src), &cfg)),
            vec!["D02"]
        );
    }

    #[test]
    fn matches_inside_literals_and_comments_do_not_fire() {
        let src = "let s = \"Instant::now() Mutex HashMap\"; // Instant in prose\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }
}
