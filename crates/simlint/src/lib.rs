//! `simlint` — repo-specific static analysis for the simulator workspace.
//!
//! The workspace's headline property is *hermetic determinism*: the same
//! trace and config must produce byte-identical results on any machine, at
//! any thread count, on any run. Most regressions against that property
//! come from a handful of std idioms that are perfectly fine elsewhere —
//! `HashMap`'s randomly seeded hasher, wall-clock timestamps, ad-hoc
//! threading — so this crate lints for exactly those, plus safety hygiene
//! and cross-file consistency rules. See [`rules`] for the rule table.
//!
//! The analysis is two-pass and has zero external dependencies:
//!
//! 1. **Per file**: a line scanner ([`scan`]) separates code from comments
//!    and blanks literals, the per-file rules ([`rules`]) match on the code
//!    channel, and a tokenizer + item extractor ([`tokens`], [`index`])
//!    records the file's consts, enums, macros, functions, and references.
//! 2. **Cross file**: the per-file indices are joined into a
//!    [`index::WorkspaceIndex`] and the registry-drift and hot-path rules
//!    ([`rules_xfile`]) run over it.
//!
//! The engine ([`analyze`]) then applies suppressions — in-source
//! `// simlint: allow(...) -- reason` comments and the central path
//! allowlists from `simlint.toml` ([`config`]) — while tracking which
//! suppression fired for which finding, so that a suppression matching
//! *zero* findings is itself reported (rule X02). In-source escape hatch:
//!
//! ```text
//! // simlint: allow(D03) -- serializes test output only
//! ```
//!
//! The reason after `--` is mandatory; a suppression without one is itself
//! reported (rule X01) and suppresses nothing.

pub mod config;
pub mod diag;
pub mod index;
pub mod rules;
pub mod rules_xfile;
pub mod scan;
pub mod selfcheck;
pub mod tokens;
pub mod walk;

pub use config::Config;
pub use diag::{render_json, render_sarif, render_text, Diagnostic};

use std::collections::BTreeSet;
use std::path::Path;

/// One workspace source file, by relative path (forward slashes) and
/// content. [`analyze`] works on a slice of these so tests and the
/// self-check can run the whole engine on in-memory file sets.
#[derive(Clone, Debug)]
pub struct SourceFile {
    pub rel: String,
    pub text: String,
}

/// Lints one source text as if it lived at `rel_path` (workspace-relative,
/// forward slashes), per-file rules only. This is the fixture-test entry
/// point for the D/S rules; cross-file behaviour needs [`analyze`].
pub fn lint_source(rel_path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    rules::lint_scanned(rel_path, &scan::scan(source), config)
}

/// Loads `simlint.toml` from `root`, or the built-in defaults when the
/// file does not exist.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("simlint.toml");
    if !path.exists() {
        return Ok(Config::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Config::parse(&text)
}

/// Reads every `.rs` file under `root/crates` and `root/tests` into
/// memory, in deterministic path order.
pub fn load_files(root: &Path, config: &Config) -> Result<Vec<SourceFile>, String> {
    let files = walk::collect_rs_files(root, config)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut out = Vec::with_capacity(files.len());
    for (rel, abs) in files {
        let text =
            std::fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        out.push(SourceFile { rel, text });
    }
    Ok(out)
}

/// Runs the full two-pass analysis over an in-memory file set: per-file
/// rules, cross-file rules, suppression filtering with usage tracking, and
/// the meta-rules X01 (malformed suppression) and X02 (dead suppression).
/// Diagnostics come back in deterministic (file, line, col, rule) order;
/// X02 findings against central `simlint.toml` entries anchor at
/// `simlint.toml:<entry line>`.
pub fn analyze(files: &[SourceFile], config: &Config) -> Vec<Diagnostic> {
    // Pass 1: scan + per-file rules + item index.
    let scanned: Vec<scan::Scanned> = files.iter().map(|f| scan::scan(&f.text)).collect();
    let mut raw: Vec<Diagnostic> = Vec::new();
    for (f, sc) in files.iter().zip(&scanned) {
        rules::raw_file_rules(&f.rel, sc, config, &mut raw);
    }
    let ws = index::WorkspaceIndex {
        files: files
            .iter()
            .map(|f| (f.rel.clone(), index::index_file(&f.text)))
            .collect(),
    };

    // Pass 2: cross-file rules.
    let xa = rules_xfile::run_xfile(&ws, config);
    raw.extend(xa.diags);

    // Suppression filtering with usage tracking. An in-source suppression
    // is consulted first (it is the more specific of the two mechanisms);
    // the central allowlist second. Every (suppression, rule) pairing that
    // actually absorbs a finding is recorded so X02 can report the ones
    // that never do.
    let file_idx = |rel: &str| files.iter().position(|f| f.rel == rel);
    let mut used_inline: BTreeSet<(usize, usize, String)> = BTreeSet::new();
    let mut used_central: BTreeSet<(String, usize)> = BTreeSet::new();
    let mut out: Vec<Diagnostic> = Vec::new();
    for d in raw {
        if let Some(fi) = file_idx(&d.file) {
            if let Some(si) = scanned[fi].suppression_covering(d.rule, d.line) {
                used_inline.insert((fi, si, d.rule.to_owned()));
                continue;
            }
        }
        if let Some(list) = config.allows.get(d.rule) {
            let mut absorbed = false;
            for (ai, a) in list.iter().enumerate() {
                if config::path_prefix(&d.file, &a.path) {
                    used_central.insert((d.rule.to_owned(), ai));
                    absorbed = true;
                }
            }
            if absorbed {
                continue;
            }
        }
        out.push(d);
    }

    // X01: malformed suppressions, unsuppressable by design.
    for (f, sc) in files.iter().zip(&scanned) {
        rules::rule_x01(&f.rel, sc, &mut out);
    }

    // X02: suppressions that matched nothing. Each is a stale claim about
    // the code — the violation it excused is gone — so it must go too.
    for (fi, (f, sc)) in files.iter().zip(&scanned).enumerate() {
        for (si, s) in sc.suppressions.iter().enumerate() {
            if s.reason.is_none() || s.rules.is_empty() {
                continue; // X01's department
            }
            for rule in &s.rules {
                if !used_inline.contains(&(fi, si, rule.clone())) {
                    out.push(Diagnostic {
                        file: f.rel.clone(),
                        line: s.line,
                        col: 1,
                        rule: "X02",
                        message: format!(
                            "dead suppression: `simlint: allow({rule})` here matched zero \
                             {rule} findings"
                        ),
                        fix: "delete the stale allow (or narrow it to the rules that still \
                              fire on this line)"
                            .to_owned(),
                    });
                }
            }
        }
    }
    for (rule, list) in &config.allows {
        for (ai, a) in list.iter().enumerate() {
            // line 0 marks entries built in code (unit tests), which have
            // no simlint.toml line to point at.
            if a.line == 0 || used_central.contains(&(rule.clone(), ai)) {
                continue;
            }
            out.push(Diagnostic {
                file: "simlint.toml".to_owned(),
                line: a.line,
                col: 1,
                rule: "X02",
                message: format!(
                    "dead suppression: central allow for {rule} on `{}` matched zero findings",
                    a.path
                ),
                fix: "delete the stale [allow] entry".to_owned(),
            });
        }
    }
    for (ri, reg) in config.registries.iter().enumerate() {
        for (ei, e) in reg.exempt.iter().enumerate() {
            if xa.used_exempts.contains(&(ri, ei)) {
                continue;
            }
            out.push(Diagnostic {
                file: "simlint.toml".to_owned(),
                line: e.line,
                col: 1,
                rule: "X02",
                message: format!(
                    "dead suppression: registry `{}` exempt \"{}\" excused no member",
                    reg.id, e.name
                ),
                fix: "delete the stale exempt entry".to_owned(),
            });
        }
    }
    for hi in &xa.dead_hotpath {
        let hp = &config.hotpath[*hi];
        out.push(Diagnostic {
            file: "simlint.toml".to_owned(),
            line: hp.line,
            col: 1,
            rule: "X02",
            message: format!(
                "dead hotpath entry: `{}#{}` matched no function (moved or renamed?)",
                hp.path, hp.func
            ),
            fix: "update the [hotpath] entry to the function's new location".to_owned(),
        });
    }

    out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    out
}

/// Lints every `.rs` file under `root/crates` and `root/tests`, returning
/// diagnostics in deterministic (file, line, col) order.
pub fn run(root: &Path, config: &Config) -> Result<Vec<Diagnostic>, String> {
    Ok(analyze(&load_files(root, config)?, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, text: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_owned(),
            text: text.to_owned(),
        }
    }

    #[test]
    fn analyze_applies_in_source_suppressions() {
        let files = [file(
            "tests/x.rs",
            "use std::sync::Mutex; // simlint: allow(D03) -- serializes test output\n\
             fn f() {}\n",
        )];
        let diags = analyze(&files, &Config::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn analyze_reports_dead_in_source_suppression_as_x02() {
        let files = [file(
            "tests/x.rs",
            "// simlint: allow(D03) -- nothing here uses a mutex any more\nfn f() {}\n",
        )];
        let diags = analyze(&files, &Config::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "X02");
        assert_eq!(diags[0].line, 1);
        assert!(diags[0].message.contains("allow(D03)"), "{:?}", diags[0]);
    }

    #[test]
    fn analyze_reports_partially_dead_multi_rule_suppression() {
        // D03 fires (Mutex), D02 does not — the D02 half is dead.
        let files = [file(
            "tests/x.rs",
            "use std::sync::Mutex; // simlint: allow(D03, D02) -- lock for test output\n",
        )];
        let diags = analyze(&files, &Config::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "X02");
        assert!(diags[0].message.contains("allow(D02)"), "{:?}", diags[0]);
    }

    #[test]
    fn analyze_reports_dead_central_allow_at_its_toml_line() {
        let toml = "[allow.D02]\n\"crates/core/src/quiet.rs\" = \"legacy timing shim\"\n";
        let config = Config::parse(toml).unwrap();
        let files = [file("crates/core/src/quiet.rs", "fn f() {}\n")];
        let diags = analyze(&files, &config);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "X02");
        assert_eq!(diags[0].file, "simlint.toml");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn analyze_live_central_allow_is_not_x02() {
        let toml = "[allow.D02]\n\"crates/core/src/timed.rs\" = \"timing shim\"\n";
        let config = Config::parse(toml).unwrap();
        let files = [file(
            "crates/core/src/timed.rs",
            "fn f() { let t = Instant::now(); let _ = t; }\n",
        )];
        let diags = analyze(&files, &config);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn analyze_x01_still_fires_and_is_not_x02() {
        let files = [file(
            "tests/x.rs",
            "use std::sync::Mutex; // simlint: allow(D03)\n",
        )];
        let diags = analyze(&files, &Config::default());
        // Malformed: X01 plus the unsuppressed D03 — but no X02.
        let rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"X01"), "{diags:?}");
        assert!(rules.contains(&"D03"), "{diags:?}");
        assert!(!rules.contains(&"X02"), "{diags:?}");
    }

    #[test]
    fn analyze_runs_cross_file_rules_and_suppressions_cover_them() {
        let toml = "[hotpath]\nfunctions = [\"crates/core/src/hot.rs#hot\"]\n";
        let config = Config::parse(toml).unwrap();
        let files = [file(
            "crates/core/src/hot.rs",
            "fn hot(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
        )];
        let diags = analyze(&files, &config);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "P02");
        assert_eq!(diags[0].line, 2);

        let suppressed = [file(
            "crates/core/src/hot.rs",
            "fn hot(x: Option<u8>) -> u8 {\n    // simlint: allow(P02) -- x checked by caller\n    x.unwrap()\n}\n",
        )];
        let diags = analyze(&suppressed, &config);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn analyze_reports_dead_exempt_and_dead_hotpath() {
        let toml = "[registry.zoo]\nkinds = \"crates/core/src/k.rs#Kind\"\ntests = [\"tests\"]\n\n\
                    [registry.zoo.exempt]\n\"ghost\" = \"never excuses anything\"\n\n\
                    [hotpath]\nfunctions = [\"crates/core/src/k.rs#no_such_fn\"]\n";
        let config = Config::parse(toml).unwrap();
        let files = [
            file("crates/core/src/k.rs", "pub enum Kind { Lru }\n"),
            file("tests/t.rs", "fn t() { let _ = Kind::Lru; }\n"),
        ];
        let diags = analyze(&files, &config);
        let x02: Vec<_> = diags.iter().filter(|d| d.rule == "X02").collect();
        assert_eq!(x02.len(), 2, "{diags:?}");
        assert!(x02.iter().all(|d| d.file == "simlint.toml"));
        assert!(x02.iter().any(|d| d.message.contains("\"ghost\"")));
        assert!(x02.iter().any(|d| d.message.contains("no_such_fn")));
    }
}
