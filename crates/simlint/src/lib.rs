//! `simlint` — repo-specific static analysis for the simulator workspace.
//!
//! The workspace's headline property is *hermetic determinism*: the same
//! trace and config must produce byte-identical results on any machine, at
//! any thread count, on any run. Most regressions against that property
//! come from a handful of std idioms that are perfectly fine elsewhere —
//! `HashMap`'s randomly seeded hasher, wall-clock timestamps, ad-hoc
//! threading — so this crate lints for exactly those, plus two safety
//! hygiene rules. See [`rules`] for the rule table.
//!
//! Zero external dependencies: a small line scanner ([`scan`]) separates
//! code from comments and blanks literals, the rule engine matches on the
//! code channel, and a TOML-subset reader ([`config`]) parses the central
//! `simlint.toml` suppression file. In-source escape hatch:
//!
//! ```text
//! // simlint: allow(D03) -- serializes test output only
//! ```
//!
//! The reason after `--` is mandatory; a suppression without one is itself
//! reported (rule X01) and suppresses nothing.

pub mod config;
pub mod diag;
pub mod rules;
pub mod scan;
pub mod walk;

pub use config::Config;
pub use diag::{render_json, render_text, Diagnostic};

use std::path::Path;

/// Lints one source text as if it lived at `rel_path` (workspace-relative,
/// forward slashes). This is the fixture-test entry point.
pub fn lint_source(rel_path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    rules::lint_scanned(rel_path, &scan::scan(source), config)
}

/// Loads `simlint.toml` from `root`, or the built-in defaults when the
/// file does not exist.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("simlint.toml");
    if !path.exists() {
        return Ok(Config::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Config::parse(&text)
}

/// Lints every `.rs` file under `root/crates` and `root/tests`, returning
/// diagnostics in deterministic (file, line, col) order.
pub fn run(root: &Path, config: &Config) -> Result<Vec<Diagnostic>, String> {
    let files = walk::collect_rs_files(root, config)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut diags = Vec::new();
    for (rel, abs) in files {
        let text =
            std::fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        diags.extend(lint_source(&rel, &text, config));
    }
    diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    Ok(diags)
}
