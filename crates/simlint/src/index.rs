//! Pass 1 of the cross-file analysis: a per-file item index built from the
//! token stream ([`crate::tokens`]), aggregated into a workspace index.
//!
//! The extractor is syntactic and forgiving — it recognizes exactly the
//! shapes the registry and hot-path rules consume:
//!
//! * `const NAME: [&str; N] = ["a", "b", …];` — string-array constants
//!   (the `POLICY_NAMES` leg),
//! * `enum Name { Variant(Payload), … }` — variants with their first
//!   payload type identifier (the `PolicyKind` leg),
//! * `macro_rules! name { … Enum::Variant … }` — `Path::Variant`
//!   references inside a macro definition (the dispatch leg),
//! * `"string" => Self::Variant(…)` match arms anywhere in a named
//!   function (the builder leg),
//! * `fn name(…) { … }` definitions with their body line/token span,
//!   skipping anything inside a `mod tests { … }` block,
//! * the set of all identifiers and (lowercased) string literals in the
//!   file (the reference legs).

use crate::tokens::{tokenize, TokKind, Token};
use std::collections::BTreeSet;

/// A `const NAME: [&str; N] = […]` string-array constant.
#[derive(Clone, Debug)]
pub struct ConstArray {
    pub name: String,
    pub line: usize,
    /// Elements in declaration order, each with its source line.
    pub elems: Vec<(String, usize)>,
}

/// One enum variant.
#[derive(Clone, Debug)]
pub struct Variant {
    pub name: String,
    /// First identifier inside a tuple payload (`Lru` in `Lru(Lru)`,
    /// `ThermometerPolicy` in `Thermometer(ThermometerPolicy)`).
    pub payload: Option<String>,
    pub line: usize,
}

/// An `enum` definition.
#[derive(Clone, Debug)]
pub struct EnumDef {
    pub name: String,
    pub line: usize,
    pub variants: Vec<Variant>,
}

/// An `Enum::Variant` path reference inside a `macro_rules!` body.
#[derive(Clone, Debug)]
pub struct PathRef {
    pub enum_name: String,
    pub variant: String,
    pub line: usize,
}

/// A `macro_rules!` definition with the paths referenced in its body.
#[derive(Clone, Debug)]
pub struct MacroDef {
    pub name: String,
    pub line: usize,
    pub paths: Vec<PathRef>,
}

/// A `"name" => Self::Variant` (or `Enum::Variant`) match arm.
#[derive(Clone, Debug)]
pub struct StrArm {
    pub value: String,
    pub variant: String,
    pub line: usize,
}

/// A function definition and its extent.
#[derive(Clone, Debug)]
pub struct FnDef {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Last line of the body.
    pub end_line: usize,
    /// Line holding the body's opening `{` (where the self-check inserts
    /// its seeded statements).
    pub body_open_line: usize,
    /// Token index range `[start, end]` from the `fn` keyword to the
    /// closing brace, inclusive.
    pub tok_range: (usize, usize),
    /// Whether the definition sits inside a `mod tests { … }` block.
    pub in_tests: bool,
}

/// Everything extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct FileIndex {
    pub tokens: Vec<Token>,
    pub consts: Vec<ConstArray>,
    pub enums: Vec<EnumDef>,
    pub macros: Vec<MacroDef>,
    pub fns: Vec<FnDef>,
    pub str_arms: Vec<StrArm>,
    /// Every identifier in the file (including test modules: a policy
    /// exercised only from `#[cfg(test)]` code still counts as exercised).
    pub idents: BTreeSet<String>,
    /// Every string-literal value, lowercased (figure column headers use
    /// display case: `"SRRIP"`, `"Hawkeye"`).
    pub strings_lower: BTreeSet<String>,
}

impl FileIndex {
    pub fn const_array(&self, name: &str) -> Option<&ConstArray> {
        self.consts.iter().find(|c| c.name == name)
    }

    pub fn enum_def(&self, name: &str) -> Option<&EnumDef> {
        self.enums.iter().find(|e| e.name == name)
    }

    pub fn macro_def(&self, name: &str) -> Option<&MacroDef> {
        self.macros.iter().find(|m| m.name == name)
    }

    /// Non-test function definitions named `name`.
    pub fn fns_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a FnDef> {
        self.fns
            .iter()
            .filter(move |f| f.name == name && !f.in_tests)
    }

    /// The string→variant arms inside the (non-test) function `name`.
    pub fn str_arms_in_fn(&self, name: &str) -> Vec<&StrArm> {
        let mut out = Vec::new();
        for f in self.fns_named(name) {
            out.extend(
                self.str_arms
                    .iter()
                    .filter(|a| a.line >= f.line && a.line <= f.end_line),
            );
        }
        out
    }
}

/// The whole workspace, keyed by forward-slash relative path, in walk
/// (sorted) order.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceIndex {
    pub files: Vec<(String, FileIndex)>,
}

impl WorkspaceIndex {
    pub fn file(&self, rel: &str) -> Option<&FileIndex> {
        self.files
            .iter()
            .find(|(r, _)| r == rel)
            .map(|(_, idx)| idx)
    }
}

/// Indexes one file.
pub fn index_file(source: &str) -> FileIndex {
    let tokens = tokenize(source);
    let n = tokens.len();
    let mut idx = FileIndex::default();

    for t in &tokens {
        match t.kind {
            TokKind::Ident => {
                idx.idents.insert(t.text.clone());
            }
            TokKind::Str => {
                idx.strings_lower.insert(t.text.to_lowercase());
            }
            _ => {}
        }
    }

    // `mod tests { … }` spans, so fn extraction can skip them.
    let test_spans = test_mod_spans(&tokens);
    let in_tests = |i: usize| test_spans.iter().any(|&(a, b)| i > a && i < b);

    let mut i = 0usize;
    while i < n {
        let t = &tokens[i];
        if t.is_ident("const") {
            if let Some(c) = parse_const_array(&tokens, i) {
                idx.consts.push(c);
            }
        } else if t.is_ident("enum") {
            if let Some(e) = parse_enum(&tokens, i) {
                idx.enums.push(e);
            }
        } else if t.is_ident("macro_rules")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && tokens.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
        {
            if let Some(m) = parse_macro(&tokens, i) {
                idx.macros.push(m);
            }
        } else if t.is_ident("fn") && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            if let Some(f) = parse_fn(&tokens, i, in_tests(i)) {
                idx.fns.push(f);
            }
        } else if t.kind == TokKind::Str
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('='))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('>'))
        {
            // `"name" => Self::Variant` / `"name" => Enum::Variant`.
            if tokens.get(i + 3).is_some_and(|t| t.kind == TokKind::Ident)
                && tokens.get(i + 4).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 5).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 6).is_some_and(|t| t.kind == TokKind::Ident)
            {
                idx.str_arms.push(StrArm {
                    value: t.text.clone(),
                    variant: tokens[i + 6].text.clone(),
                    line: t.line,
                });
            }
        }
        i += 1;
    }

    idx.tokens = tokens;
    idx
}

/// Finds the token spans of `mod tests { … }` blocks (the repo convention
/// for unit-test modules).
fn test_mod_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident("mod")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("tests"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            if let Some(close) = matching_brace(tokens, i + 2) {
                spans.push((i + 2, close));
            }
        }
    }
    spans
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// `const NAME: … = ["a", "b", …];` with at least the `= [` part present.
fn parse_const_array(tokens: &[Token], at: usize) -> Option<ConstArray> {
    let name_tok = tokens.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Walk to the `=` before the initializer, bounded by the closing `;`.
    // The type annotation may itself contain brackets and semicolons
    // (`[&str; 12]`), so only punctuation at bracket depth 0 counts.
    let mut j = at + 2;
    let mut bracket = 0isize;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if bracket == 0 && t.is_punct('=') {
            break;
        } else if bracket == 0 && (t.is_punct(';') || t.is_punct('{')) {
            return None;
        }
        j += 1;
    }
    if j >= tokens.len() || !tokens.get(j + 1).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    let mut elems = Vec::new();
    let mut k = j + 2;
    while k < tokens.len() && !tokens[k].is_punct(']') {
        if tokens[k].kind == TokKind::Str {
            elems.push((tokens[k].text.clone(), tokens[k].line));
        } else if !tokens[k].is_punct(',') {
            // Not a flat string array (numbers, nested exprs): skip it.
            return None;
        }
        k += 1;
    }
    if elems.is_empty() {
        return None;
    }
    Some(ConstArray {
        name: name_tok.text.clone(),
        line: name_tok.line,
        elems,
    })
}

/// `enum Name { Variant, Variant(Payload), Variant { … }, … }`.
fn parse_enum(tokens: &[Token], at: usize) -> Option<EnumDef> {
    let name_tok = tokens.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Skip generics to the body brace.
    let mut j = at + 2;
    while j < tokens.len() && !tokens[j].is_punct('{') {
        if tokens[j].is_punct(';') {
            return None;
        }
        j += 1;
    }
    let close = matching_brace(tokens, j)?;
    let mut variants = Vec::new();
    let mut k = j + 1;
    while k < close {
        // Skip attributes on the variant.
        while tokens[k].is_punct('#') && tokens.get(k + 1).is_some_and(|t| t.is_punct('[')) {
            let mut depth = 0usize;
            k += 1;
            while k < close {
                if tokens[k].is_punct('[') {
                    depth += 1;
                } else if tokens[k].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
        if k >= close {
            break;
        }
        if tokens[k].kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let vname = tokens[k].text.clone();
        let vline = tokens[k].line;
        let mut payload = None;
        k += 1;
        if k < close && tokens[k].is_punct('(') {
            // Tuple payload: record the first identifier, skip the rest.
            let mut depth = 0usize;
            while k < close {
                if tokens[k].is_punct('(') {
                    depth += 1;
                } else if tokens[k].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                } else if payload.is_none() && tokens[k].kind == TokKind::Ident {
                    payload = Some(tokens[k].text.clone());
                }
                k += 1;
            }
        } else if k < close && tokens[k].is_punct('{') {
            // Struct payload: skip it.
            if let Some(c) = matching_brace(tokens, k) {
                k = c + 1;
            }
        } else if k < close && tokens[k].is_punct('=') {
            // Discriminant: skip to the separating comma.
            while k < close && !tokens[k].is_punct(',') {
                k += 1;
            }
        }
        variants.push(Variant {
            name: vname,
            payload,
            line: vline,
        });
        // Skip the separating comma.
        while k < close && tokens[k].is_punct(',') {
            k += 1;
        }
    }
    Some(EnumDef {
        name: name_tok.text.clone(),
        line: name_tok.line,
        variants,
    })
}

/// `macro_rules! name { … }`, collecting `Enum::Variant` paths in the body.
fn parse_macro(tokens: &[Token], at: usize) -> Option<MacroDef> {
    let name_tok = &tokens[at + 2];
    let mut j = at + 3;
    while j < tokens.len() && !tokens[j].is_punct('{') {
        j += 1;
    }
    let close = matching_brace(tokens, j)?;
    let mut paths = Vec::new();
    let mut k = j + 1;
    while k + 3 <= close {
        if tokens[k].kind == TokKind::Ident
            && tokens[k + 1].is_punct(':')
            && tokens[k + 2].is_punct(':')
            && tokens.get(k + 3).is_some_and(|t| t.kind == TokKind::Ident)
        {
            paths.push(PathRef {
                enum_name: tokens[k].text.clone(),
                variant: tokens[k + 3].text.clone(),
                line: tokens[k].line,
            });
            k += 4;
        } else {
            k += 1;
        }
    }
    Some(MacroDef {
        name: name_tok.text.clone(),
        line: name_tok.line,
        paths,
    })
}

/// `fn name … { … }`. Returns `None` for bodyless declarations (trait
/// methods, extern fns).
fn parse_fn(tokens: &[Token], at: usize, in_tests: bool) -> Option<FnDef> {
    let name_tok = &tokens[at + 1];
    // The body `{` is the first one at zero paren/bracket/angle-free
    // nesting after the signature; a `;` first means no body.
    let mut j = at + 2;
    let mut paren = 0isize;
    let mut bracket = 0isize;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') if paren == 0 && bracket == 0 => break,
            TokKind::Punct(';') if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    let close = matching_brace(tokens, j)?;
    Some(FnDef {
        name: name_tok.text.clone(),
        line: name_tok.line,
        end_line: tokens[close].line,
        body_open_line: tokens[j].line,
        tok_range: (at, close),
        in_tests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub const NAMES: [&str; 2] = [
    "lru",
    "fifo",
];

pub enum Kind {
    /// docs
    Lru(Lru),
    Fifo(Fifo),
    Bare,
}

macro_rules! each {
    ($s:expr, $p:ident => $b:expr) => {
        match $s {
            Kind::Lru($p) => $b,
            Kind::Fifo($p) => $b,
        }
    };
}

impl Kind {
    pub fn by_name(name: &str) -> Option<Self> {
        Some(match name {
            "lru" => Self::Lru(Lru::new()),
            "fifo" => Self::Fifo(Fifo::new()),
            _ => return None,
        })
    }
}

fn hot(xs: &[u64]) -> u64 {
    xs[0]
}

mod tests {
    fn helper() {}
}
"#;

    #[test]
    fn const_arrays_with_element_lines() {
        let idx = index_file(SRC);
        let c = idx.const_array("NAMES").expect("NAMES indexed");
        assert_eq!(c.elems.len(), 2);
        assert_eq!(c.elems[0].0, "lru");
        assert_eq!(c.elems[0].1, 3);
        assert_eq!(c.elems[1].0, "fifo");
    }

    #[test]
    fn enums_with_payloads() {
        let idx = index_file(SRC);
        let e = idx.enum_def("Kind").expect("Kind indexed");
        let names: Vec<_> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Lru", "Fifo", "Bare"]);
        assert_eq!(e.variants[0].payload.as_deref(), Some("Lru"));
        assert_eq!(e.variants[2].payload, None);
    }

    #[test]
    fn macro_paths_are_collected() {
        let idx = index_file(SRC);
        let m = idx.macro_def("each").expect("each indexed");
        let pairs: Vec<_> = m
            .paths
            .iter()
            .filter(|p| p.enum_name == "Kind")
            .map(|p| p.variant.as_str())
            .collect();
        assert_eq!(pairs, vec!["Lru", "Fifo"]);
    }

    #[test]
    fn str_arms_inside_named_fn() {
        let idx = index_file(SRC);
        let arms = idx.str_arms_in_fn("by_name");
        let pairs: Vec<_> = arms
            .iter()
            .map(|a| (a.value.as_str(), a.variant.as_str()))
            .collect();
        assert_eq!(pairs, vec![("lru", "Lru"), ("fifo", "Fifo")]);
    }

    #[test]
    fn fns_and_test_mods() {
        let idx = index_file(SRC);
        let hot = idx.fns_named("hot").next().expect("hot indexed");
        assert!(hot.body_open_line > 0 && hot.end_line > hot.body_open_line);
        assert!(idx.fns_named("helper").next().is_none(), "tests skipped");
        assert!(idx.fns.iter().any(|f| f.name == "helper" && f.in_tests));
        assert!(idx.idents.contains("Lru"));
        assert!(idx.strings_lower.contains("lru"));
    }
}
