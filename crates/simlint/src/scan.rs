//! A small Rust line scanner: separates code from comments and blanks out
//! literals, so rule matching never fires inside a string, a char literal,
//! or a comment.
//!
//! This is deliberately not a full lexer. It understands exactly what the
//! rules need:
//!
//! * line comments (`//`, and the doc forms `///` / `//!`),
//! * nested block comments (`/* /* */ */`),
//! * string literals with escapes, raw strings (`r"…"`, `r#"…"#`),
//!   byte-string variants (`b"…"`, `br#"…"#`),
//! * char literals vs. lifetimes (`'a'` is a literal, `'env` is not).
//!
//! The output keeps byte columns aligned with the input: every non-code
//! byte is replaced by a space in [`Line::code`], so a rule hit's column
//! number points at the real source location.

/// One scanned source line.
#[derive(Clone, Debug)]
pub struct Line {
    /// The line with comments and literal *contents* blanked to spaces
    /// (column-preserving). Rule matching happens on this.
    pub code: String,
    /// Concatenated text of every comment on this line (line comments and
    /// any block-comment portion), without the `//` / `/*` markers.
    pub comment: String,
    /// Whether the comment on this line is a doc comment (`///` or `//!`).
    pub doc_comment: bool,
}

impl Line {
    /// Whether the line holds no code at all (blank or comment-only).
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// Whether the line carries any comment text.
    pub fn has_comment(&self) -> bool {
        !self.comment.trim().is_empty()
    }
}

/// An in-source suppression: `// simlint: allow(D01, D03) -- reason`.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Rule ids named in the `allow(...)` list.
    pub rules: Vec<String>,
    /// Text after `--`; `None` when the author forgot the justification
    /// (which is itself a diagnostic, rule X01).
    pub reason: Option<String>,
}

/// A whole scanned file.
#[derive(Clone, Debug)]
pub struct Scanned {
    pub lines: Vec<Line>,
    pub suppressions: Vec<Suppression>,
}

impl Scanned {
    /// Whether a diagnostic of `rule` on 1-based `line` is suppressed by an
    /// in-source `simlint: allow`. A suppression covers its own line; a
    /// comment-only suppression line also covers the next line, so it can
    /// sit above the offending statement.
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppression_covering(rule, line).is_some()
    }

    /// Index (into [`Scanned::suppressions`]) of the suppression covering a
    /// diagnostic of `rule` on 1-based `line`, if any. The engine uses the
    /// index to track which suppressions actually fired (rule X02).
    pub fn suppression_covering(&self, rule: &str, line: usize) -> Option<usize> {
        self.suppressions.iter().position(|s| {
            if !s.rules.iter().any(|r| r == rule) || s.reason.is_none() {
                return false;
            }
            if s.line == line {
                return true;
            }
            s.line + 1 == line && self.lines[s.line - 1].is_comment_only()
        })
    }

    /// Whether a `SAFETY:` comment covers 1-based `line`: on the line
    /// itself or in the contiguous comment block immediately above it.
    pub fn has_safety_comment(&self, line: usize) -> bool {
        let idx = line - 1;
        if self.lines[idx].comment.contains("SAFETY:") {
            return true;
        }
        let mut i = idx;
        while i > 0 && self.lines[i - 1].is_comment_only() && self.lines[i - 1].has_comment() {
            i -= 1;
            if self.lines[i].comment.contains("SAFETY:") {
                return true;
            }
        }
        false
    }
}

#[derive(Copy, Clone, PartialEq)]
enum Mode {
    Code,
    LineComment { doc: bool },
    BlockComment { depth: usize },
    Str,
    RawStr { hashes: usize },
    Char,
}

/// Scans `source` into per-line code/comment channels.
pub fn scan(source: &str) -> Scanned {
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut doc = false;
    let mut mode = Mode::Code;

    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let n = bytes.len();

    macro_rules! flush_line {
        () => {{
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                doc_comment: std::mem::take(&mut doc),
            });
        }};
    }

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            // A line comment ends with the line; block constructs continue.
            if let Mode::LineComment { .. } = mode {
                mode = Mode::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = bytes.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        let third = bytes.get(i + 2).copied();
                        let is_doc = third == Some('/') || third == Some('!');
                        mode = Mode::LineComment { doc: is_doc };
                        doc = doc || is_doc;
                        code.push_str("  ");
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment { depth: 1 };
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        mode = Mode::Str;
                        code.push(' ');
                        i += 1;
                    }
                    'r' | 'b' => {
                        // Raw / byte string starts: r", r#", br", b".
                        let mut j = i + 1;
                        if c == 'b' && bytes.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0usize;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let raw_marker = j > i + 1 || hashes > 0;
                        if bytes.get(j) == Some(&'"') && (c == 'r' || raw_marker || c == 'b') {
                            if c == 'b' && j == i + 1 {
                                // plain byte string b"…"
                                mode = Mode::Str;
                            } else {
                                mode = Mode::RawStr { hashes };
                            }
                            for _ in i..=j {
                                code.push(' ');
                            }
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal or lifetime. `'\…'` and `'x'` are
                        // literals; `'ident` (no closing quote) is a
                        // lifetime and stays code.
                        if next == Some('\\') {
                            mode = Mode::Char;
                            code.push(' ');
                            i += 1;
                        } else if bytes.get(i + 2) == Some(&'\'') && next.is_some() {
                            code.push_str("   ");
                            i += 3;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                }
            }
            Mode::LineComment { .. } => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            Mode::BlockComment { depth } => {
                let next = bytes.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment { depth: depth - 1 }
                    };
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment { depth: depth + 1 };
                    comment.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    if bytes.get(i + 1) == Some(&'\n') {
                        // Line-continuation escape: let the main loop flush
                        // the line so numbering stays aligned.
                        code.push(' ');
                        i += 1;
                    } else {
                        code.push_str("  ");
                        i += 2;
                    }
                } else if c == '"' {
                    mode = Mode::Code;
                    code.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr { hashes } => {
                if c == '"' {
                    let closes = (0..hashes).all(|k| bytes.get(i + 1 + k) == Some(&'#'));
                    if closes {
                        for _ in 0..=hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes;
                        mode = Mode::Code;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
            Mode::Char => {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    mode = Mode::Code;
                    code.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    flush_line!();

    let suppressions = parse_suppressions(&lines);
    Scanned {
        lines,
        suppressions,
    }
}

/// The marker in-source suppressions start with.
pub const ALLOW_MARKER: &str = "simlint: allow(";

fn parse_suppressions(lines: &[Line]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        // Doc comments describe the suppression syntax, they do not use
        // it — otherwise every doc example would register as a (dead)
        // suppression under X02.
        if line.doc_comment {
            continue;
        }
        let Some(start) = line.comment.find(ALLOW_MARKER) else {
            continue;
        };
        let rest = &line.comment[start + ALLOW_MARKER.len()..];
        let Some(close) = rest.find(')') else {
            out.push(Suppression {
                line: idx + 1,
                rules: Vec::new(),
                reason: None,
            });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = &rest[close + 1..];
        let reason = tail
            .find("--")
            .map(|dash| tail[dash + 2..].trim().to_owned());
        let reason = match reason {
            Some(r) if !r.is_empty() => Some(r),
            _ => None,
        };
        out.push(Suppression {
            line: idx + 1,
            rules,
            reason,
        });
    }
    out
}

/// Finds 0-based byte columns where `word` occurs in `code` delimited by
/// non-identifier characters on both sides (so `DetHashMap` never matches
/// `HashMap`).
pub fn find_word(code: &str, word: &str) -> Vec<usize> {
    let mut cols = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            cols.push(at);
        }
        from = at + word.len().max(1);
    }
    cols
}

/// Like [`find_word`] but only requires a word boundary on the left, for
/// prefix families such as `Atomic*` (`AtomicU64`, `AtomicBool`, …).
pub fn find_word_prefix(code: &str, prefix: &str) -> Vec<usize> {
    let mut cols = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(prefix) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        if before_ok {
            cols.push(at);
        }
        from = at + prefix.len().max(1);
    }
    cols
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_separated_from_code() {
        let s = scan("let x = 1; // trailing note\n// full line\nlet y = 2;\n");
        assert!(s.lines[0].code.contains("let x = 1;"));
        assert!(!s.lines[0].code.contains("trailing"));
        assert_eq!(s.lines[0].comment.trim(), "trailing note");
        assert!(s.lines[1].is_comment_only());
        assert!(s.lines[2].code.contains("let y = 2;"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let s = scan("let s = \"Instant::now() // not code\"; let t = 1;\n");
        assert!(!s.lines[0].code.contains("Instant"));
        assert!(!s.lines[0].code.contains("not code"));
        assert!(s.lines[0].code.contains("let t = 1;"));
        assert!(!s.lines[0].has_comment());
    }

    #[test]
    fn raw_strings_and_escapes() {
        let s = scan("let a = r#\"Mutex \" inside\"#; let b = \"q\\\"uo\"; done()\n");
        assert!(!s.lines[0].code.contains("Mutex"));
        assert!(s.lines[0].code.contains("done()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let s = scan("fn f<'env>(c: char) { let x = 'a'; let y = '\\n'; g::<'env>() }\n");
        assert!(s.lines[0].code.contains("'env"));
        assert!(!s.lines[0].code.contains("'a'"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let s = scan("a(); /* one /* two */ still */ b();\n/* open\nInstant\n*/ c();\n");
        assert!(s.lines[0].code.contains("a();"));
        assert!(s.lines[0].code.contains("b();"));
        assert!(!s.lines[0].code.contains("one"));
        assert!(!s.lines[2].code.contains("Instant"));
        assert!(s.lines[2].comment.contains("Instant"));
        assert!(s.lines[3].code.contains("c();"));
    }

    #[test]
    fn suppression_with_reason_parses() {
        let s = scan("use x::Mutex; // simlint: allow(D03, D02) -- test serialization lock\n");
        assert_eq!(s.suppressions.len(), 1);
        assert_eq!(s.suppressions[0].rules, vec!["D03", "D02"]);
        assert_eq!(
            s.suppressions[0].reason.as_deref(),
            Some("test serialization lock")
        );
        assert!(s.is_suppressed("D03", 1));
        assert!(!s.is_suppressed("D01", 1));
    }

    #[test]
    fn suppression_without_reason_does_not_suppress() {
        let s = scan("use x::Mutex; // simlint: allow(D03)\n");
        assert_eq!(s.suppressions[0].reason, None);
        assert!(!s.is_suppressed("D03", 1));
    }

    #[test]
    fn doc_comment_examples_are_not_suppressions() {
        let s = scan(
            "/// In-source escape hatch: `// simlint: allow(D03) -- reason`.\nuse x::Mutex;\n",
        );
        assert!(s.suppressions.is_empty(), "{:?}", s.suppressions);
        let t = scan("//! // simlint: allow(D02) -- doc example\n");
        assert!(t.suppressions.is_empty());
    }

    #[test]
    fn standalone_suppression_covers_next_line() {
        let s = scan("// simlint: allow(D02) -- timing harness\nlet t = Instant::now();\n");
        assert!(s.is_suppressed("D02", 2));
        assert!(!s.is_suppressed("D02", 3));
    }

    #[test]
    fn safety_comment_block_is_found() {
        let src = "// SAFETY: the scope outlives\n// every borrow.\nlet j = unsafe { f() };\n";
        let s = scan(src);
        assert!(s.has_safety_comment(3));
        let t = scan("let j = unsafe { f() }; // SAFETY: inline\n");
        assert!(t.has_safety_comment(1));
        let u = scan("let j = unsafe { f() };\n");
        assert!(!u.has_safety_comment(1));
    }

    #[test]
    fn word_boundaries_exclude_det_variants() {
        assert_eq!(
            find_word("DetHashMap<u64, u8>", "HashMap"),
            Vec::<usize>::new()
        );
        assert_eq!(find_word("HashMap<u64, u8>", "HashMap"), vec![0]);
        assert_eq!(find_word("a HashMap b HashMapX", "HashMap"), vec![2]);
        assert_eq!(find_word_prefix("AtomicU64::new", "Atomic"), vec![0]);
        assert!(find_word_prefix("MyAtomicU64", "Atomic").is_empty());
    }
}
