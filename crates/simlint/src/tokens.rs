//! A lightweight Rust tokenizer for the cross-file pass.
//!
//! The line scanner ([`crate::scan`]) blanks literal *contents* because the
//! per-line rules must never fire inside them — but the registry rules need
//! exactly those contents (`"lru"` in `POLICY_NAMES`, `"srrip" => …` match
//! arms), so the item index is built from a second, token-level view of the
//! source. Like the scanner this is deliberately not a full lexer: it
//! produces just enough structure for [`crate::index`] — identifiers,
//! string-literal values, numbers, lifetimes, and single-character
//! punctuation, each carrying its 1-based source line. Comments are
//! dropped; multi-character operators arrive as adjacent punctuation
//! tokens (`::` is `':' ':'`, `=>` is `'=' '>'`), which is what the
//! pattern matching in the indexer expects.

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `PolicyKind`, `lru`).
    Ident,
    /// A string or byte-string literal; the token text is the *inner*
    /// value with escape sequences left as written (`\n` stays two chars —
    /// the registry names this feeds on never use escapes).
    Str,
    /// A char literal (`'a'`, `'\n'`); value not preserved.
    Char,
    /// A lifetime (`'a`, `'static`); text is the name without the quote.
    Lifetime,
    /// A numeric literal (`12`, `0x5eed`, `1_000u64`).
    Num,
    /// One punctuation character.
    Punct(char),
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    /// Ident/lifetime name, string value, or number text; empty for
    /// `Char` and `Punct`.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// Whether this is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes `source`. Never fails: anything unrecognized becomes
/// punctuation, which the indexer ignores.
pub fn tokenize(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    macro_rules! push {
        ($kind:expr, $text:expr, $line:expr) => {
            out.push(Token {
                kind: $kind,
                text: $text,
                line: $line,
            })
        };
    }

    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if next == Some('/') => {
                // Line comment: skip to end of line (newline handled above).
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (value, end, endline) = read_string(&chars, i + 1, line);
                push!(TokKind::Str, value, line);
                line = endline;
                i = end;
            }
            'r' | 'b' if starts_raw_or_byte_string(&chars, i) => {
                let mut j = i + 1;
                if c == 'b' && chars.get(j) == Some(&'r') {
                    j += 1;
                }
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    if hashes == 0 && j == i + 1 && c == 'b' {
                        // Plain byte string b"…": ordinary escapes.
                        let (value, end, endline) = read_string(&chars, j + 1, line);
                        push!(TokKind::Str, value, line);
                        line = endline;
                        i = end;
                    } else {
                        let (value, end, endline) = read_raw_string(&chars, j + 1, hashes, line);
                        push!(TokKind::Str, value, line);
                        line = endline;
                        i = end;
                    }
                } else {
                    // `r`/`b` was just an identifier start after all.
                    let (text, end) = read_ident(&chars, i);
                    push!(TokKind::Ident, text, line);
                    i = end;
                }
            }
            '\'' => {
                // Char literal vs lifetime, same heuristic as the scanner:
                // `'\…'` and `'x'` are literals, `'ident` is a lifetime.
                if next == Some('\\') {
                    let mut j = i + 2;
                    if j < n {
                        j += 1; // the escaped char
                    }
                    while j < n && chars[j] != '\'' {
                        j += 1;
                    }
                    push!(TokKind::Char, String::new(), line);
                    i = (j + 1).min(n);
                } else if chars.get(i + 2) == Some(&'\'') && next.is_some() {
                    push!(TokKind::Char, String::new(), line);
                    i += 3;
                } else if next.is_some_and(is_ident_start) {
                    let (text, end) = read_ident(&chars, i + 1);
                    push!(TokKind::Lifetime, text, line);
                    i = end;
                } else {
                    push!(TokKind::Punct('\''), String::new(), line);
                    i += 1;
                }
            }
            c if is_ident_start(c) => {
                let (text, end) = read_ident(&chars, i);
                push!(TokKind::Ident, text, line);
                i = end;
            }
            c if c.is_ascii_digit() => {
                // Digits plus suffix/base letters and separators; dots are
                // punctuation so ranges (`0..n`) stay intact.
                let mut j = i;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                push!(TokKind::Num, chars[i..j].iter().collect(), line);
                i = j;
            }
            c => {
                push!(TokKind::Punct(c), String::new(), line);
                i += 1;
            }
        }
    }
    out
}

/// Whether the `r`/`b` at `i` opens a raw or byte string rather than
/// starting an identifier (`row`, `base`).
fn starts_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    let mut j = i + 1;
    if chars[i] == 'b' && chars.get(j) == Some(&'r') {
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Reads a `"…"` body starting just past the opening quote. Returns
/// (value, index past closing quote, line after the literal).
fn read_string(chars: &[char], mut i: usize, mut line: usize) -> (String, usize, usize) {
    let n = chars.len();
    let mut value = String::new();
    while i < n {
        match chars[i] {
            '\\' => {
                value.push('\\');
                if let Some(&e) = chars.get(i + 1) {
                    if e == '\n' {
                        line += 1;
                    }
                    value.push(e);
                }
                i += 2;
            }
            '"' => return (value, i + 1, line),
            '\n' => {
                value.push('\n');
                line += 1;
                i += 1;
            }
            c => {
                value.push(c);
                i += 1;
            }
        }
    }
    (value, n, line)
}

/// Reads a raw string body (`r#"…"#` with `hashes` hashes) starting just
/// past the opening quote.
fn read_raw_string(
    chars: &[char],
    mut i: usize,
    hashes: usize,
    mut line: usize,
) -> (String, usize, usize) {
    let n = chars.len();
    let mut value = String::new();
    while i < n {
        if chars[i] == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
            return (value, i + 1 + hashes, line);
        }
        if chars[i] == '\n' {
            line += 1;
        }
        value.push(chars[i]);
        i += 1;
    }
    (value, n, line)
}

fn read_ident(chars: &[char], i: usize) -> (String, usize) {
    let mut j = i;
    while j < chars.len() && is_ident_continue(chars[j]) {
        j += 1;
    }
    (chars[i..j].iter().collect(), j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_strings_and_puncts() {
        let toks = kinds("const NAMES: [&str; 2] = [\"lru\", \"fifo\"];");
        assert!(toks.contains(&(TokKind::Ident, "NAMES".into())));
        assert!(toks.contains(&(TokKind::Str, "lru".into())));
        assert!(toks.contains(&(TokKind::Str, "fifo".into())));
        assert!(toks.contains(&(TokKind::Num, "2".into())));
    }

    #[test]
    fn comments_are_dropped_but_lines_advance() {
        let toks = tokenize("a // note\n/* block\nspans */ b\n");
        let idents: Vec<_> = toks.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(idents, vec![("a".to_owned(), 1), ("b".to_owned(), 3)]);
    }

    #[test]
    fn string_values_survive_with_lines() {
        let toks = tokenize("x\n\"keep me\"\ny");
        assert_eq!(toks[1].kind, TokKind::Str);
        assert_eq!(toks[1].text, "keep me");
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let a = r#"raw "quoted""#; let b = b"bytes"; let r = row;"##);
        assert!(toks.contains(&(TokKind::Str, "raw \"quoted\"".into())));
        assert!(toks.contains(&(TokKind::Str, "bytes".into())));
        assert!(toks.contains(&(TokKind::Ident, "row".into())));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = kinds("fn f<'a>(c: char) { let x = 'q'; let y = '\\n'; }");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Char).count(),
            2,
            "{toks:?}"
        );
        assert!(!toks.contains(&(TokKind::Ident, "q".into())));
    }

    #[test]
    fn arrow_and_path_arrive_as_adjacent_puncts() {
        let toks = tokenize("\"lru\" => Self::Lru(Lru::new()),");
        assert_eq!(toks[0].kind, TokKind::Str);
        assert!(toks[1].is_punct('='));
        assert!(toks[2].is_punct('>'));
        assert!(toks[3].is_ident("Self"));
        assert!(toks[4].is_punct(':'));
        assert!(toks[5].is_punct(':'));
        assert!(toks[6].is_ident("Lru"));
    }
}
