//! Frontend timing invariants and prefetcher integration.

use btb_model::policies::Lru;
use btb_model::{AccessOutcome, BtbConfig, BtbInterface};
use btb_trace::{BranchRecord, Trace};
use btb_workloads::{AppSpec, InputConfig};
use uarch_sim::prefetch::{Prefetcher, TwigPrefetcher};
use uarch_sim::{Frontend, FrontendConfig, PerfectOptions};

fn workload(len: usize) -> Trace {
    let spec = AppSpec {
        functions: 300,
        handlers: 30,
        ..AppSpec::by_name("kafka").unwrap()
    };
    spec.generate(InputConfig::input(0), len)
}

#[test]
fn cycle_accounting_identity() {
    // total cycles == fetch-bandwidth base + the four stall categories.
    let trace = workload(60_000);
    let mut fe = Frontend::new(FrontendConfig::table1(), Lru::new());
    let r = fe.run(&trace, None);
    let base: f64 = trace
        .records()
        .iter()
        .map(|rec| (1 + rec.inst_gap) as f64 / 6.0)
        .sum();
    let accounted = base
        + r.btb_stall_cycles
        + r.direction_stall_cycles
        + r.target_stall_cycles
        + r.icache_stall_cycles;
    assert!(
        (r.cycles - accounted).abs() < 1e-6 * r.cycles,
        "cycles {} != accounted {}",
        r.cycles,
        accounted
    );
}

#[test]
fn all_perfect_structures_reach_fetch_bound() {
    let trace = workload(60_000);
    let mut cfg = FrontendConfig::table1();
    cfg.perfect = PerfectOptions {
        btb: true,
        branch_predictor: true,
        icache: true,
    };
    let r = Frontend::new(cfg, Lru::new()).run(&trace, None);
    // Only target mispredicts (indirects/returns) remain.
    assert_eq!(r.btb_stall_cycles, 0.0);
    assert_eq!(r.direction_stall_cycles, 0.0);
    assert_eq!(r.icache_stall_cycles, 0.0);
    let bound = 6.0;
    assert!(r.ipc() <= bound + 1e-9);
    assert!(
        r.ipc() > 0.5 * bound,
        "ipc {:.2} far from the fetch bound",
        r.ipc()
    );
}

#[test]
fn stall_categories_shrink_with_their_perfect_switch() {
    let trace = workload(60_000);
    let base = Frontend::new(FrontendConfig::table1(), Lru::new()).run(&trace, None);

    let mut cfg = FrontendConfig::table1();
    cfg.perfect.branch_predictor = true;
    let no_bp = Frontend::new(cfg, Lru::new()).run(&trace, None);
    assert_eq!(no_bp.direction_stall_cycles, 0.0);
    assert!(no_bp.cycles < base.cycles);

    let mut cfg = FrontendConfig::table1();
    cfg.perfect.icache = true;
    let no_ic = Frontend::new(cfg, Lru::new()).run(&trace, None);
    assert_eq!(no_ic.icache_stall_cycles, 0.0);
    assert!(no_ic.cycles < base.cycles);
}

#[test]
fn buffer_hits_suppress_btb_penalty() {
    /// A prefetcher whose buffer claims to hold *every* branch: all misses
    /// become buffer hits, so no BTB stall cycles may be charged.
    struct Omniscient;
    impl Prefetcher for Omniscient {
        fn name(&self) -> &'static str {
            "Omniscient"
        }
        fn on_branch(&mut self, _r: &BranchRecord, _o: AccessOutcome, _b: &mut dyn BtbInterface) {}
        fn buffer_hit(&mut self, _pc: u64) -> bool {
            true
        }
    }

    let trace = workload(30_000);
    let mut fe = Frontend::new(FrontendConfig::table1(), Lru::new());
    fe.set_prefetcher(Box::new(Omniscient));
    let r = fe.run(&trace, None);
    assert_eq!(r.btb_stall_cycles, 0.0, "buffer hits must cancel re-steers");
    assert_eq!(r.btb_buffer_hits, r.btb.misses, "every miss was covered");
    assert!(r.btb.misses > 0, "the BTB itself still records the misses");
}

#[test]
fn twig_buffer_hits_are_counted_in_reports() {
    let spec = AppSpec {
        functions: 600,
        handlers: 60,
        ..AppSpec::by_name("kafka").unwrap()
    };
    let train = spec.generate(InputConfig::input(0), 150_000);
    let test = spec.generate(InputConfig::input(0), 150_000);
    let config = BtbConfig::new(1024, 4);
    let twig = TwigPrefetcher::train(&train, config, 16);
    let mut fe = Frontend::new(
        FrontendConfig {
            btb: config,
            ..FrontendConfig::table1()
        },
        Lru::new(),
    );
    fe.set_prefetcher(Box::new(twig));
    let r = fe.run(&test, None);
    assert!(
        r.btb_buffer_hits > 0,
        "twig never served a miss from its buffer"
    );
}

#[test]
fn prefetchers_never_change_instruction_count() {
    let trace = workload(40_000);
    let plain = Frontend::new(FrontendConfig::table1(), Lru::new()).run(&trace, None);
    let mut fe = Frontend::new(FrontendConfig::table1(), Lru::new());
    fe.set_prefetcher(Box::new(uarch_sim::prefetch::Confluence::new()));
    let assisted = fe.run(&trace, None);
    assert_eq!(plain.instructions, assisted.instructions);
    assert!(
        assisted.cycles <= plain.cycles * 1.02,
        "a prefetcher should not slow LRU much here"
    );
}

#[test]
fn ftq_size_bounds_the_icache_shield() {
    // Smaller FTQ -> less run-ahead -> more exposed I-cache stalls.
    let trace = workload(80_000);
    let stalls = |ftq: u32| {
        let mut cfg = FrontendConfig::table1();
        cfg.timing.ftq_instructions = ftq;
        Frontend::new(cfg, Lru::new())
            .run(&trace, None)
            .icache_stall_cycles
    };
    let tiny = stalls(24);
    let big = stalls(512);
    assert!(
        tiny >= big,
        "tiny FTQ ({tiny}) should expose >= stalls than big ({big})"
    );
}
