//! BTB prefetchers: Confluence, Shotgun and Twig, simplified per DESIGN.md.
//!
//! The paper compares Thermometer against (and composes it with) three
//! prior BTB-prefetching proposals:
//!
//! * **Confluence** (Kaynak+, MICRO'15) — fills BTB entries alongside the
//!   I-cache blocks a temporal stream predictor prefetches ([`Confluence`]).
//! * **Shotgun** (Kumar+, ASPLOS'18) — statically partitions the BTB by
//!   branch type and uses unconditional-branch targets to prefetch the
//!   callee region's conditional branches ([`shotgun::ShotgunBtb`]).
//! * **Twig** (Khan+, MICRO'21) — profile-guided: a trace analysis finds
//!   (trigger → future-BTB-miss) correlations and injects prefetches at
//!   the triggers ([`twig::TwigPrefetcher`]).
//!
//! The simplified models preserve each design's qualitative failure modes
//! (Fig. 4): temporal prefetchers miss non-recurring streams, Shotgun's
//! static partition mismatches working sets and wastes capacity on
//! prefetch metadata, and Twig composes well with replacement policies.

pub mod confluence;
pub mod shotgun;
pub mod twig;

pub use confluence::Confluence;
pub use shotgun::ShotgunBtb;
pub use twig::TwigPrefetcher;

use btb_model::{AccessOutcome, BtbInterface};
use btb_trace::BranchRecord;

/// A BTB prefetcher hooked after every demand access.
pub trait Prefetcher {
    /// Prefetcher name as used in figure labels.
    fn name(&self) -> &'static str;

    /// Observes one taken-branch access and may install prefetch fills.
    fn on_branch(
        &mut self,
        record: &BranchRecord,
        outcome: AccessOutcome,
        btb: &mut dyn BtbInterface,
    );

    /// Consults the prefetcher's side *prefetch buffer* for a branch the
    /// main BTB just missed; returns true (consuming the entry) when the
    /// buffer holds it. State-of-the-art BTB prefetchers (Twig, Shotgun)
    /// stage prefetches in a small buffer so speculative entries do not
    /// contend for main-BTB ways — which matters doubly under Thermometer,
    /// whose bypass rule would otherwise reject cold prefetches outright
    /// (paper §3.4).
    fn buffer_hit(&mut self, _pc: u64) -> bool {
        false
    }
}
