//! Twig-lite: profile-guided BTB prefetching (Khan et al., MICRO'21).
//!
//! Twig analyzes a profile trace to find, for every recurring BTB miss, a
//! *trigger* branch that reliably executes a fixed distance earlier, and
//! injects a prefetch of the missing entry at the trigger. This model runs
//! the same offline analysis on a training trace (replaying an LRU BTB to
//! find misses, then correlating each miss with the access `lookahead`
//! positions before it) and replays the learned trigger table online.
//!
//! Twig is the prefetcher the paper composes Thermometer with in Fig. 21:
//! prefetching and replacement attack different miss classes, so their
//! benefits stack.

use std::collections::VecDeque;

use sim_support::DetHashMap;

use btb_model::{policies::Lru, AccessOutcome, Btb, BtbConfig, BtbInterface};
use btb_trace::{BranchKind, BranchRecord, Trace};

use crate::prefetch::Prefetcher;

/// Maximum prefetch targets per trigger.
const TRIGGER_CAP: usize = 6;
/// Capacity of the staging prefetch buffer (Twig uses a 32-entry buffer).
const BUFFER_CAP: usize = 32;

/// The trained Twig prefetcher.
#[derive(Clone, Debug, Default)]
pub struct TwigPrefetcher {
    /// Trigger PC → entries to prefetch when it executes. Looked up per
    /// branch online (hot); never iterated, so the seeded map is safe.
    table: DetHashMap<u64, Vec<(u64, u64, BranchKind)>>,
    /// Staging buffer: prefetches live here until used or displaced, so
    /// speculative entries never fight the main BTB's replacement policy.
    buffer: VecDeque<(u64, u64, BranchKind)>,
    /// Prefetch fills issued online.
    pub issued: u64,
    /// Demand misses served from the staging buffer.
    pub buffer_hits: u64,
}

impl TwigPrefetcher {
    /// Trains on a profile trace: replays an LRU BTB of `config` geometry,
    /// and for every demand miss records the taken branch `lookahead`
    /// accesses earlier as its trigger.
    pub fn train(profile: &Trace, config: BtbConfig, lookahead: usize) -> Self {
        let mut btb = Btb::new(config, Lru::new());
        let mut window: Vec<&BranchRecord> = Vec::new();
        let mut table: DetHashMap<u64, Vec<(u64, u64, BranchKind)>> = DetHashMap::default();

        for r in profile.taken() {
            let outcome = btb.access_taken(r.pc, r.target, r.kind, u64::MAX);
            if outcome.is_miss() && window.len() >= lookahead {
                let trigger = window[window.len() - lookahead];
                let entry = (r.pc, r.target, r.kind);
                let list = table.entry(trigger.pc).or_default();
                if !list.iter().any(|&(pc, _, _)| pc == r.pc) && list.len() < TRIGGER_CAP {
                    list.push(entry);
                }
            }
            window.push(r);
            if window.len() > lookahead + 1 {
                window.remove(0);
            }
        }
        Self {
            table,
            buffer: VecDeque::new(),
            issued: 0,
            buffer_hits: 0,
        }
    }

    /// Number of learned triggers.
    pub fn trigger_count(&self) -> usize {
        self.table.len()
    }
}

impl Prefetcher for TwigPrefetcher {
    fn name(&self) -> &'static str {
        "Twig"
    }

    fn on_branch(&mut self, r: &BranchRecord, _outcome: AccessOutcome, btb: &mut dyn BtbInterface) {
        if let Some(list) = self.table.get(&r.pc) {
            let entries: Vec<(u64, u64, BranchKind)> = list
                .iter()
                .copied()
                .filter(|&(pc, _, _)| btb.probe(pc).is_none())
                .collect();
            for (pc, target, kind) in entries {
                self.issued += 1;
                // Stage in the buffer; the buffer is the insertion point so
                // the main BTB only ever receives demanded entries.
                if let Some(pos) = self.buffer.iter().position(|&(p, _, _)| p == pc) {
                    self.buffer.remove(pos);
                }
                if self.buffer.len() >= BUFFER_CAP {
                    self.buffer.pop_front();
                }
                self.buffer.push_back((pc, target, kind));
            }
        }
    }

    fn buffer_hit(&mut self, pc: u64) -> bool {
        if let Some(pos) = self.buffer.iter().position(|&(p, _, _)| p == pc) {
            self.buffer.remove(pos);
            self.buffer_hits += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btb_model::AccessContext;

    /// A cyclic stream over `n` branches striding across all sets.
    fn cyclic(n: u64, rounds: u64) -> Trace {
        let mut t = Trace::new("cyclic");
        for _ in 0..rounds {
            for i in 0..n {
                t.push(BranchRecord::taken(
                    0x1000 + i * 4,
                    0x2000,
                    BranchKind::UncondDirect,
                    0,
                ));
            }
        }
        t
    }

    #[test]
    fn training_learns_recurring_misses() {
        // 96 branches through a 64-entry BTB: recurring capacity misses.
        let trace = cyclic(96, 6);
        let twig = TwigPrefetcher::train(&trace, BtbConfig::new(64, 4), 8);
        assert!(twig.trigger_count() > 0, "no triggers learned");
    }

    #[test]
    fn prefetching_covers_misses_online() {
        let trace = cyclic(96, 6);
        let config = BtbConfig::new(64, 4);
        let mut twig = TwigPrefetcher::train(&trace, config, 8);

        // Baseline LRU misses without prefetching.
        let mut plain = Btb::new(config, Lru::new());
        for r in trace.taken() {
            plain.access_taken(r.pc, r.target, r.kind, u64::MAX);
        }

        // Same stream with Twig staging prefetches in its buffer; a demand
        // miss found in the buffer counts as covered (the frontend charges
        // no re-steer for it).
        let mut assisted = Btb::new(config, Lru::new());
        let mut covered = 0u64;
        for r in trace.taken() {
            let ctx = AccessContext {
                pc: r.pc,
                target: r.target,
                kind: r.kind,
                ..Default::default()
            };
            let outcome = assisted.access(&ctx);
            if outcome.is_miss() && twig.buffer_hit(r.pc) {
                covered += 1;
            }
            twig.on_branch(r, outcome, &mut assisted);
        }

        assert!(twig.issued > 0);
        assert_eq!(covered, twig.buffer_hits);
        let effective = assisted.stats().misses - covered;
        assert!(
            effective < plain.stats().misses,
            "twig effective {effective} vs plain {}",
            plain.stats().misses
        );
    }

    #[test]
    fn buffer_is_capacity_bounded_and_consuming() {
        let trace = cyclic(96, 6);
        let mut twig = TwigPrefetcher::train(&trace, BtbConfig::new(64, 4), 8);
        let mut btb = Btb::new(BtbConfig::new(64, 4), Lru::new());
        for r in trace.taken().take(2000) {
            let ctx = AccessContext {
                pc: r.pc,
                target: r.target,
                kind: r.kind,
                ..Default::default()
            };
            let outcome = btb.access(&ctx);
            twig.on_branch(r, outcome, &mut btb);
        }
        assert!(twig.buffer.len() <= BUFFER_CAP);
        // A buffer hit consumes the entry: a second probe misses.
        if let Some(&(pc, _, _)) = twig.buffer.front() {
            assert!(twig.buffer_hit(pc));
            assert!(!twig.buffer_hit(pc));
        }
    }

    #[test]
    fn no_training_data_means_no_prefetches() {
        let twig = TwigPrefetcher::train(&Trace::new("empty"), BtbConfig::new(64, 4), 16);
        assert_eq!(twig.trigger_count(), 0);
    }
}
