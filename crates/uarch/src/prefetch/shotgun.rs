//! Shotgun-lite: a statically partitioned, BTB-directed prefetching BTB.
//!
//! Shotgun splits the BTB by branch type: a large U-BTB for unconditional
//! branches (whose targets expose the program's region structure), a small
//! C-BTB for conditionals, and a RIB for return-instruction metadata. On a
//! U-BTB hit it prefetches the conditional branches of the target's
//! *spatial region*, learned from past executions.
//!
//! The model reproduces the three weaknesses the paper identifies (§2.2):
//!
//! 1. the static partition rarely matches an application's conditional /
//!    unconditional working-set split (26–45% of conditionals do not fit),
//! 2. part of the storage budget holds prefetch metadata (region
//!    footprints) rather than branch targets — modeled by shrinking the
//!    usable entry budget,
//! 3. temporal novelty still defeats the region predictor.

use sim_support::DetHashMap;

use btb_model::{
    AccessContext, AccessOutcome, Btb, BtbConfig, BtbEntry, BtbInterface, BtbStats,
    ReplacementPolicy,
};
use btb_trace::BranchKind;

use crate::cache::BLOCK_BYTES;

/// Fraction of the storage budget spent on region-footprint metadata.
const METADATA_FRACTION: f64 = 0.15;
/// Fraction of the remaining entries given to the U-BTB.
const UBTB_FRACTION: f64 = 0.60;
/// Branches remembered per spatial region.
const REGION_CAP: usize = 12;

/// The partitioned Shotgun BTB. Implements [`BtbInterface`] so it can slot
/// into the frontend in place of a conventional BTB.
#[derive(Debug)]
pub struct ShotgunBtb<P> {
    ubtb: Btb<P>,
    cbtb: Btb<P>,
    /// Region start block → conditional branches inside the region.
    /// Looked up per access (hot); never iterated, so the seeded map is
    /// safe.
    regions: DetHashMap<u64, Vec<(u64, u64)>>,
    /// Prefetch fills issued.
    pub issued: u64,
}

fn is_unconditional(kind: BranchKind) -> bool {
    !kind.is_conditional()
}

impl<P: ReplacementPolicy> ShotgunBtb<P> {
    /// Builds a Shotgun BTB from a total entry budget, handing each
    /// partition its own replacement policy instance.
    ///
    /// # Panics
    ///
    /// Panics if the budget is too small to form both partitions.
    pub fn new(total: BtbConfig, policy_u: P, policy_c: P) -> Self {
        let ways = total.ways();
        let usable = ((total.entries() as f64) * (1.0 - METADATA_FRACTION)) as usize;
        let u_entries = ((usable as f64 * UBTB_FRACTION) as usize / ways).max(1) * ways;
        let c_entries = ((usable - u_entries) / ways).max(1) * ways;
        Self {
            ubtb: Btb::new(BtbConfig::new(u_entries, ways), policy_u),
            cbtb: Btb::new(BtbConfig::new(c_entries, ways), policy_c),
            regions: DetHashMap::default(),
            issued: 0,
        }
    }

    fn region_of(addr: u64) -> u64 {
        // 512B spatial regions (8 blocks).
        addr / (8 * BLOCK_BYTES)
    }

    /// Partition sizes `(u_btb, c_btb)` in entries.
    pub fn partition_entries(&self) -> (usize, usize) {
        (
            self.ubtb.geometry().entries(),
            self.cbtb.geometry().entries(),
        )
    }
}

impl<P: ReplacementPolicy> BtbInterface for ShotgunBtb<P> {
    fn access(&mut self, ctx: &AccessContext) -> AccessOutcome {
        // Learn region footprints for conditionals.
        if ctx.kind.is_conditional() {
            let region = Self::region_of(ctx.pc);
            let list = self.regions.entry(region).or_default();
            if !list.iter().any(|&(pc, _)| pc == ctx.pc) && list.len() < REGION_CAP {
                list.push((ctx.pc, ctx.target));
            }
        }

        let outcome = if is_unconditional(ctx.kind) {
            let outcome = self.ubtb.access(ctx);
            // BTB-directed prefetch: a known unconditional branch reveals
            // the upcoming region; prefill its conditional branches.
            if outcome.is_hit() {
                let region = Self::region_of(ctx.target);
                if let Some(list) = self.regions.get(&region) {
                    let fills: Vec<(u64, u64)> = list
                        .iter()
                        .copied()
                        .filter(|&(pc, _)| self.cbtb.probe(pc).is_none())
                        .collect();
                    for (pc, target) in fills {
                        self.cbtb.prefetch_fill(pc, target, BranchKind::CondDirect);
                        self.issued += 1;
                    }
                }
            }
            outcome
        } else {
            self.cbtb.access(ctx)
        };
        outcome
    }

    fn probe(&self, pc: u64) -> Option<BtbEntry> {
        self.ubtb.probe(pc).or_else(|| self.cbtb.probe(pc))
    }

    fn prefetch_fill(&mut self, pc: u64, target: u64, kind: BranchKind) -> bool {
        if is_unconditional(kind) {
            self.ubtb.prefetch_fill(pc, target, kind)
        } else {
            self.cbtb.prefetch_fill(pc, target, kind)
        }
    }

    fn stats(&self) -> BtbStats {
        let u = self.ubtb.stats();
        let c = self.cbtb.stats();
        BtbStats {
            accesses: u.accesses + c.accesses,
            hits: u.hits + c.hits,
            misses: u.misses + c.misses,
            target_mismatches: u.target_mismatches + c.target_mismatches,
            fills: u.fills + c.fills,
            evictions: u.evictions + c.evictions,
            bypasses: u.bypasses + c.bypasses,
            prefetch_fills: u.prefetch_fills + c.prefetch_fills,
            prefetch_evictions: u.prefetch_evictions + c.prefetch_evictions,
        }
    }

    fn capacity(&self) -> usize {
        self.ubtb.geometry().entries() + self.cbtb.geometry().entries()
    }

    fn clear(&mut self) {
        self.ubtb.clear();
        self.cbtb.clear();
        self.regions.clear();
        self.issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btb_model::policies::Lru;

    fn ctx(pc: u64, target: u64, kind: BranchKind) -> AccessContext {
        AccessContext {
            pc,
            target,
            kind,
            ..Default::default()
        }
    }

    #[test]
    fn capacity_is_lost_to_metadata() {
        let sg = ShotgunBtb::new(BtbConfig::table1(), Lru::new(), Lru::new());
        let (u, c) = sg.partition_entries();
        assert!(u + c < 8192, "metadata overhead not modeled: {u} + {c}");
        assert!(u > c, "U-BTB should dominate the partition");
    }

    #[test]
    fn partitions_route_by_kind() {
        let mut sg = ShotgunBtb::new(BtbConfig::new(64, 4), Lru::new(), Lru::new());
        sg.access(&ctx(0x100, 0x1000, BranchKind::DirectCall));
        sg.access(&ctx(0x104, 0x200, BranchKind::CondDirect));
        assert!(sg.ubtb.probe(0x100).is_some());
        assert!(sg.ubtb.probe(0x104).is_none());
        assert!(sg.cbtb.probe(0x104).is_some());
    }

    #[test]
    fn ubtb_hit_prefetches_target_region_conditionals() {
        let mut sg = ShotgunBtb::new(BtbConfig::new(64, 4), Lru::new(), Lru::new());
        // Teach the region: conditional at 0x1000 (region of 0x1000).
        sg.access(&ctx(0x1000, 0x1040, BranchKind::CondDirect));
        // Unconditional into that region: first access misses (fills), the
        // second hits and triggers the region prefetch.
        sg.access(&ctx(0x500, 0x1000, BranchKind::UncondDirect));
        // Evict the conditional by thrashing its set... simpler: clear cbtb.
        sg.cbtb.clear();
        assert!(sg.cbtb.probe(0x1000).is_none());
        sg.access(&ctx(0x500, 0x1000, BranchKind::UncondDirect));
        assert!(
            sg.cbtb.probe(0x1000).is_some(),
            "region prefetch did not fill the conditional"
        );
        assert!(sg.issued > 0);
    }

    #[test]
    fn conditional_pressure_overwhelms_small_cbtb() {
        // Many conditionals vs a partition sized for few: miss rate stays
        // high even on re-execution — the paper's partition-mismatch
        // failure mode.
        let mut sg = ShotgunBtb::new(BtbConfig::new(64, 4), Lru::new(), Lru::new());
        let (_, c_entries) = sg.partition_entries();
        let conds = (c_entries * 4) as u64;
        for _ in 0..4 {
            for i in 0..conds {
                sg.access(&ctx(0x2000 + i * 4, 0x9000, BranchKind::CondDirect));
            }
        }
        let s = sg.stats();
        assert!(
            s.misses as f64 > 0.5 * s.accesses as f64,
            "conditionals should thrash the small C-BTB: {s:?}"
        );
    }
}
