//! Confluence-lite: temporal-stream BTB prefetching.
//!
//! Confluence's insight is that BTB misses and I-cache misses follow the
//! same temporal streams, so the BTB can be refilled "for free" alongside
//! I-cache prefetches. This model keeps:
//!
//! * a **bundle table**: which branches live in each 64B code block
//!   (learned from demand accesses — Confluence's block-aware BTB), and
//! * a **successor table**: the temporal next-block stream.
//!
//! On a BTB miss it replays the learned stream from the missing block,
//! prefilling the bundles of the next few blocks. Like any temporal
//! prefetcher it is blind to *new* streams — almost half of all BTB misses
//! in data center applications (paper §2.2) — which is why its speedup in
//! Fig. 4 is small, and why it can even hurt by polluting the BTB.

use sim_support::DetHashMap;

use btb_model::{AccessOutcome, BtbInterface};
use btb_trace::{BranchKind, BranchRecord};

use crate::cache::BLOCK_BYTES;
use crate::prefetch::Prefetcher;

/// Maximum branches remembered per code block.
const BUNDLE_CAP: usize = 8;

/// The Confluence-lite prefetcher.
#[derive(Clone, Debug, Default)]
pub struct Confluence {
    /// Code block → branches within it. Looked up per branch online (hot);
    /// never iterated, so the seeded map is safe.
    bundles: DetHashMap<u64, Vec<(u64, u64, BranchKind)>>,
    /// Temporal stream: block → next block observed.
    successor: DetHashMap<u64, u64>,
    last_block: Option<u64>,
    /// Blocks of stream replayed per miss.
    depth: usize,
    /// Prefetch fills issued.
    pub issued: u64,
}

impl Confluence {
    /// Creates the prefetcher with the default stream depth (4 blocks).
    pub fn new() -> Self {
        Self {
            depth: 4,
            ..Self::default()
        }
    }

    /// Overrides the stream replay depth.
    pub fn with_depth(depth: usize) -> Self {
        Self {
            depth,
            ..Self::default()
        }
    }
}

impl Prefetcher for Confluence {
    fn name(&self) -> &'static str {
        "Confluence"
    }

    fn on_branch(&mut self, r: &BranchRecord, outcome: AccessOutcome, btb: &mut dyn BtbInterface) {
        let block = r.pc / BLOCK_BYTES;

        // Learn the bundle and the temporal stream.
        let bundle = self.bundles.entry(block).or_default();
        if !bundle.iter().any(|&(pc, _, _)| pc == r.pc) && bundle.len() < BUNDLE_CAP {
            bundle.push((r.pc, r.target, r.kind));
        }
        if let Some(prev) = self.last_block {
            if prev != block {
                self.successor.insert(prev, block);
            }
        }
        self.last_block = Some(block);

        // On a miss, replay the learned stream ahead of the miss point.
        if outcome.is_miss() {
            let mut cur = block;
            for _ in 0..self.depth {
                let Some(&next) = self.successor.get(&cur) else {
                    break;
                };
                if let Some(branches) = self.bundles.get(&next) {
                    for &(pc, target, kind) in branches {
                        if btb.probe(pc).is_none() {
                            btb.prefetch_fill(pc, target, kind);
                            self.issued += 1;
                        }
                    }
                }
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btb_model::{policies::Lru, AccessContext, Btb, BtbConfig};

    fn access(btb: &mut Btb<Lru>, pf: &mut Confluence, pc: u64) -> AccessOutcome {
        let ctx = AccessContext {
            pc,
            target: pc + 0x100,
            kind: BranchKind::UncondDirect,
            ..Default::default()
        };
        let outcome = btb.access(&ctx);
        let r = BranchRecord::taken(pc, pc + 0x100, BranchKind::UncondDirect, 0);
        pf.on_branch(&r, outcome, btb);
        outcome
    }

    #[test]
    fn recurring_stream_is_prefetched() {
        // A long recurring sequence whose footprint exceeds a small BTB:
        // second pass over the stream should hit in part thanks to stream
        // replays after the first miss.
        let mut btb = Btb::new(BtbConfig::new(64, 4), Lru::new());
        let mut pf = Confluence::new();
        let pcs: Vec<u64> = (0..200u64).map(|i| i * BLOCK_BYTES).collect();
        for _ in 0..3 {
            for &pc in &pcs {
                access(&mut btb, &mut pf, pc);
            }
        }
        assert!(pf.issued > 0, "stream prefetches never issued");
    }

    #[test]
    fn new_streams_get_no_prefetches() {
        let mut btb = Btb::new(BtbConfig::new(64, 4), Lru::new());
        let mut pf = Confluence::new();
        // Every block seen once: no successor is ever known at miss time.
        for i in 0..500u64 {
            access(&mut btb, &mut pf, i * BLOCK_BYTES);
        }
        assert_eq!(
            pf.issued, 0,
            "temporal prefetcher must be blind to novel streams"
        );
    }

    #[test]
    fn bundles_are_capacity_bounded() {
        let mut pf = Confluence::new();
        let mut btb = Btb::new(BtbConfig::new(64, 4), Lru::new());
        // 20 branches in one block: bundle must stay bounded.
        for i in 0..20u64 {
            let pc = 0x1000 + i * 2; // same 64B block
            let r = BranchRecord::taken(pc, 0x9000, BranchKind::CondDirect, 0);
            pf.on_branch(&r, AccessOutcome::MissInserted, &mut btb);
        }
        assert!(pf.bundles[&(0x1000 / BLOCK_BYTES)].len() <= BUNDLE_CAP);
    }
}
