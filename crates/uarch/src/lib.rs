//! Trace-driven decoupled-frontend (FDIP) simulator.
//!
//! This crate rebuilds, from scratch, the simulation substrate the paper
//! runs on (a ChampSim derivative configured per Table 1): a decoupled
//! frontend in which the branch-prediction unit runs ahead of instruction
//! fetch, prefetching I-cache blocks for the predicted path (Fetch Directed
//! Instruction Prefetching). Frontend performance is then bounded by three
//! event classes, all modeled here:
//!
//! * **BTB misses** on taken branches — the BPU cannot continue on the
//!   taken path; the frontend re-steers when the branch decodes/resolves
//!   and the run-ahead (prefetch shield) collapses,
//! * **direction / target mispredictions** — pipeline flush,
//! * **I-cache misses** whose latency the run-ahead failed to hide.
//!
//! The backend is modeled as a fixed-width consumer (6-wide per Table 1)
//! with constant penalties — DESIGN.md §2 explains why this preserves the
//! paper's *relative* speedups.
//!
//! # Examples
//!
//! ```
//! use btb_model::policies::Lru;
//! use btb_trace::{BranchKind, BranchRecord, Trace};
//! use uarch_sim::{Frontend, FrontendConfig};
//!
//! let mut trace = Trace::new("demo");
//! for i in 0..100u64 {
//!     trace.push(BranchRecord::taken(0x1000 + (i % 10) * 64, 0x1000, BranchKind::UncondDirect, 7));
//! }
//! let mut frontend = Frontend::new(FrontendConfig::table1(), Lru::new());
//! let report = frontend.run(&trace, None);
//! assert_eq!(report.instructions, trace.instruction_count());
//! assert!(report.ipc() > 0.0);
//! ```

pub mod cache;
pub mod frontend;
pub mod ibtb;
pub mod prefetch;
pub mod ras;
pub mod report;
pub mod tage;
pub mod timing;

pub use frontend::{Frontend, FrontendConfig, PerfectOptions};
pub use report::SimReport;
pub use timing::TimingConfig;
