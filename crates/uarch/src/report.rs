//! Simulation results.

use btb_model::BtbStats;

/// Everything one frontend simulation produces.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Workload name.
    pub workload: String,
    /// Configuration label ("LRU", "OPT", "Thermometer", ...).
    pub label: String,
    /// Retired instructions.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: f64,
    /// Cycles lost to BTB-miss re-steers.
    pub btb_stall_cycles: f64,
    /// Cycles lost to direction mispredictions.
    pub direction_stall_cycles: f64,
    /// Cycles lost to indirect/return target mispredictions.
    pub target_stall_cycles: f64,
    /// Cycles lost to I-cache misses not hidden by the run-ahead.
    pub icache_stall_cycles: f64,
    /// Conditional branches executed / mispredicted.
    pub cond_branches: u64,
    /// Conditional mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect (jump/call) executions and mispredictions.
    pub indirect_branches: u64,
    /// Indirect target mispredictions (with a BTB/IBTB hit).
    pub indirect_mispredicts: u64,
    /// Returns executed.
    pub returns: u64,
    /// Return-target mispredictions.
    pub return_mispredicts: u64,
    /// BTB counters.
    pub btb: BtbStats,
    /// Demand misses served by a prefetcher's staging buffer (no re-steer
    /// charged; counted as misses in `btb` but hits for timing).
    pub btb_buffer_hits: u64,
    /// L1I demand misses.
    pub l1i_misses: u64,
    /// L2 instruction misses (for L2iMPKI, Fig. 3).
    pub l2i_misses: u64,
    /// LLC instruction misses.
    pub llc_misses: u64,
}

impl SimReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// Relative speedup of `self` over `baseline`, as a percentage
    /// (the paper's figures are all in this unit).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        (self.ipc() / baseline.ipc() - 1.0) * 100.0
    }

    /// BTB misses per kilo-instruction.
    pub fn btb_mpki(&self) -> f64 {
        self.btb.mpki(self.instructions)
    }

    /// BTB miss reduction versus `baseline`, as a percentage of the
    /// baseline's misses (Fig. 12's unit).
    pub fn miss_reduction_over(&self, baseline: &SimReport) -> f64 {
        if baseline.btb.misses == 0 {
            0.0
        } else {
            (1.0 - self.btb.misses as f64 / baseline.btb.misses as f64) * 100.0
        }
    }

    /// L2 instruction misses per kilo-instruction.
    pub fn l2_impki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2i_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Conditional misprediction rate in `[0, 1]`.
    pub fn cond_mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(instructions: u64, cycles: f64, btb_misses: u64) -> SimReport {
        SimReport {
            instructions,
            cycles,
            btb: BtbStats {
                misses: btb_misses,
                accesses: btb_misses * 2,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let base = report(1000, 1000.0, 100);
        let fast = report(1000, 800.0, 50);
        assert!((base.ipc() - 1.0).abs() < 1e-12);
        assert!((fast.speedup_over(&base) - 25.0).abs() < 1e-9);
        assert!((fast.miss_reduction_over(&base) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_reports_do_not_divide_by_zero() {
        let z = SimReport::default();
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.btb_mpki(), 0.0);
        assert_eq!(z.l2_impki(), 0.0);
        assert_eq!(z.cond_mispredict_rate(), 0.0);
        assert_eq!(z.miss_reduction_over(&z), 0.0);
    }
}
