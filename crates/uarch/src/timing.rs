//! Timing parameters of the frontend model.

/// Latencies, widths and penalties (cycles). Defaults follow Table 1's
/// 6-wide core with a 24-entry (192-instruction) FTQ, with penalties in the
/// range ChampSim charges for the corresponding events.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TimingConfig {
    /// Instructions fetched/retired per cycle.
    pub fetch_width: u32,
    /// FTQ capacity in instructions (24 entries x 8 per Table 1): caps how
    /// far the BPU can run ahead of fetch, i.e. the prefetch shield.
    pub ftq_instructions: u32,
    /// Cycles the BPU spends per branch record (prediction throughput).
    pub bpu_cycles_per_branch: f64,
    /// Penalty for a frontend re-steer on a BTB miss of a taken branch
    /// (detected at decode: the FDIP run-ahead collapses).
    pub btb_miss_penalty: u32,
    /// Penalty for a conditional direction misprediction (execute-time
    /// flush).
    pub cond_mispredict_penalty: u32,
    /// Penalty for an indirect-target or return misprediction.
    pub target_mispredict_penalty: u32,
    /// L2 hit latency for an instruction fetch that missed L1I.
    pub l2_latency: u32,
    /// LLC hit latency.
    pub llc_latency: u32,
    /// DRAM latency.
    pub memory_latency: u32,
    /// Concurrent I-cache prefetches the FDIP engine sustains (memory-level
    /// parallelism). While the run-ahead shield is up, the FTQ's blocks are
    /// prefetched in parallel, so a stream of misses costs `latency / mlp`
    /// per block; only the first demand miss after a squash serializes.
    pub prefetch_mlp: u32,
}

impl TimingConfig {
    /// The paper's Table 1 configuration.
    pub fn table1() -> Self {
        Self {
            fetch_width: 6,
            ftq_instructions: 192,
            bpu_cycles_per_branch: 0.5,
            btb_miss_penalty: 16,
            cond_mispredict_penalty: 17,
            target_mispredict_penalty: 17,
            l2_latency: 12,
            llc_latency: 40,
            memory_latency: 220,
            prefetch_mlp: 8,
        }
    }

    /// Maximum run-ahead lead, in cycles, implied by the FTQ size.
    pub fn max_lead(&self) -> f64 {
        f64::from(self.ftq_instructions) / f64::from(self.fetch_width)
    }

    /// Validates parameter sanity.
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 {
            return Err("fetch_width must be positive".into());
        }
        if self.ftq_instructions == 0 {
            return Err("ftq_instructions must be positive".into());
        }
        if self.bpu_cycles_per_branch <= 0.0 || !self.bpu_cycles_per_branch.is_finite() {
            return Err("bpu_cycles_per_branch must be positive and finite".into());
        }
        if !(self.l2_latency <= self.llc_latency && self.llc_latency <= self.memory_latency) {
            return Err("latencies must be monotone: l2 <= llc <= memory".into());
        }
        if self.prefetch_mlp == 0 {
            return Err("prefetch_mlp must be at least 1".into());
        }
        Ok(())
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_valid() {
        assert_eq!(TimingConfig::table1().validate(), Ok(()));
    }

    #[test]
    fn max_lead_matches_ftq() {
        let t = TimingConfig::table1();
        assert!((t.max_lead() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_inverted_latencies() {
        let t = TimingConfig {
            l2_latency: 100,
            llc_latency: 40,
            ..TimingConfig::table1()
        };
        assert!(t.validate().is_err());
    }
}
