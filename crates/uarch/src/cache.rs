//! Instruction-side cache hierarchy (Table 1: 32KB/8-way L1I, 512KB/8-way
//! L2, 2MB/16-way LLC, 64-byte blocks), LRU-managed.
//!
//! The simulator only streams instructions, so the hierarchy tracks the
//! instruction path: an access that misses L1I probes L2, then LLC, then
//! memory, installing the block on the way back (inclusive fills). The
//! returned [`HitLevel`] tells the frontend which latency to charge.

/// 64-byte cache blocks.
pub const BLOCK_BYTES: u64 = 64;

/// Where an instruction-fetch access was satisfied.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Hit in the L1 instruction cache (no stall).
    L1,
    /// Missed L1, hit the unified L2.
    L2,
    /// Missed L2, hit the last-level cache.
    Llc,
    /// Missed everywhere: fetched from DRAM.
    Memory,
}

/// A single set-associative, LRU-managed cache level, `W`-way.
///
/// The associativity is a compile-time constant: each set is one `[u64; W]`
/// row, so the hit scan has a fixed trip count (vectorizable, no bounds
/// checks) and a row lookup is a single index.
#[derive(Clone, Debug)]
pub struct CacheLevel<const W: usize> {
    sets: usize,
    /// `sets - 1` when `sets` is a power of two (every Table 1 level is),
    /// letting [`CacheLevel::set_of`] mask instead of divide on the
    /// per-block hot path; `0` otherwise, falling back to `%`.
    set_mask: u64,
    /// tags[set][way], `u64::MAX` = invalid.
    tags: Vec<[u64; W]>,
    stamps: Vec<[u64; W]>,
    clock: u64,
    /// Demand + prefetch lookups.
    pub accesses: u64,
    /// Lookups that missed this level.
    pub misses: u64,
}

impl<const W: usize> CacheLevel<W> {
    /// Creates a level of `size_bytes` capacity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into whole `W`-way sets.
    pub fn new(size_bytes: usize) -> Self {
        let blocks = size_bytes / BLOCK_BYTES as usize;
        assert!(
            W > 0 && blocks.is_multiple_of(W),
            "invalid cache geometry: {size_bytes}B / {W} ways"
        );
        let sets = blocks / W;
        Self {
            sets,
            set_mask: if sets.is_power_of_two() {
                sets as u64 - 1
            } else {
                0
            },
            tags: vec![[u64::MAX; W]; sets],
            stamps: vec![[0; W]; sets],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_of(&self, block: u64) -> usize {
        if self.set_mask != 0 {
            (block & self.set_mask) as usize
        } else {
            (block % self.sets as u64) as usize
        }
    }

    /// Looks up `block`; on miss, installs it (evicting LRU). Returns
    /// whether it hit.
    ///
    /// Both scans are branchless (no early exit) so they vectorize: tags in
    /// a set are unique, so the exitless hit scan finds the same way, and
    /// the LRU scan keeps the first minimum exactly like
    /// `Iterator::min_by_key` did.
    pub fn access(&mut self, block: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let set = self.set_of(block);
        // Exitless fixed-width scan: tags in a set are unique, so keeping
        // the last match equals the first.
        let row = &self.tags[set];
        let mut hit_way = usize::MAX;
        for (w, &t) in row.iter().enumerate() {
            hit_way = if t == block { w } else { hit_way };
        }
        if hit_way != usize::MAX {
            self.stamps[set][hit_way] = self.clock;
            return true;
        }
        self.misses += 1;
        // Branchless first-minimum, matching `Iterator::min_by_key`.
        let stamps = &self.stamps[set];
        let mut victim = 0usize;
        let mut oldest = stamps[0];
        for (w, &s) in stamps.iter().enumerate().skip(1) {
            let take = s < oldest;
            victim = if take { w } else { victim };
            oldest = if take { s } else { oldest };
        }
        self.tags[set][victim] = block;
        self.stamps[set][victim] = self.clock;
        false
    }

    /// Hints that `block`'s set will be accessed soon; no architectural
    /// effect.
    #[inline]
    pub fn warm(&self, block: u64) {
        let set = self.set_of(block);
        sim_support::prefetch_read(&raw const self.tags[set]);
        sim_support::prefetch_read(&raw const self.stamps[set]);
    }

    /// Whether `block` is resident, without updating LRU or counters.
    pub fn contains(&self, block: u64) -> bool {
        self.tags[self.set_of(block)].contains(&block)
    }
}

/// The three-level instruction hierarchy.
#[derive(Clone, Debug)]
pub struct InstrHierarchy {
    /// L1 instruction cache.
    pub l1i: CacheLevel<8>,
    /// Unified L2 (instruction path only in this model).
    pub l2: CacheLevel<8>,
    /// Last-level cache.
    pub llc: CacheLevel<16>,
}

impl InstrHierarchy {
    /// The Table 1 hierarchy. (L1I is 32KB/8-way; Table 1's 48KB/12-way L1D
    /// is irrelevant to the instruction path.)
    pub fn table1() -> Self {
        Self {
            l1i: CacheLevel::new(32 * 1024),
            l2: CacheLevel::new(512 * 1024),
            llc: CacheLevel::new(2 * 1024 * 1024),
        }
    }

    /// Fetches the block containing `addr`, returning where it hit and
    /// installing it in every level above.
    pub fn fetch(&mut self, addr: u64) -> HitLevel {
        self.fetch_block(addr / BLOCK_BYTES)
    }

    /// [`InstrHierarchy::fetch`] keyed directly by block number, for
    /// callers already walking block ranges.
    pub fn fetch_block(&mut self, block: u64) -> HitLevel {
        if self.l1i.access(block) {
            HitLevel::L1
        } else if self.l2.access(block) {
            HitLevel::L2
        } else if self.llc.access(block) {
            HitLevel::Llc
        } else {
            HitLevel::Memory
        }
    }

    /// Hints that the block containing `addr` will be fetched soon. Only
    /// the L1I row is warmed: it is probed on every fetch, while the outer
    /// levels are only touched on (much rarer) misses.
    #[inline]
    pub fn warm(&self, addr: u64) {
        self.l1i.warm(addr / BLOCK_BYTES);
    }

    /// Instruction misses at the L2 level per kilo-instruction — the
    /// paper's L2iMPKI metric (Fig. 3).
    pub fn l2_impki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.l2.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_fetch_hits_l1() {
        let mut h = InstrHierarchy::table1();
        assert_eq!(h.fetch(0x1000), HitLevel::Memory);
        assert_eq!(h.fetch(0x1000), HitLevel::L1);
        assert_eq!(h.fetch(0x1004), HitLevel::L1, "same 64B block");
        assert_eq!(h.fetch(0x1040), HitLevel::Memory, "next block is cold");
    }

    #[test]
    fn working_set_between_l1_and_l2_hits_l2() {
        let mut h = InstrHierarchy::table1();
        // 128KB working set: thrashes 32KB L1I, fits 512KB L2.
        let blocks: Vec<u64> = (0..2048u64).map(|i| i * 64).collect();
        for _ in 0..3 {
            for &b in &blocks {
                h.fetch(b);
            }
        }
        let mut l2_hits = 0;
        for &b in &blocks {
            if h.fetch(b) == HitLevel::L2 {
                l2_hits += 1;
            }
        }
        assert!(l2_hits > 1500, "l2 hits {l2_hits}");
    }

    #[test]
    fn giant_working_set_reaches_memory() {
        let mut h = InstrHierarchy::table1();
        // 8MB working set exceeds the 2MB LLC.
        let blocks: Vec<u64> = (0..131_072u64).map(|i| i * 64).collect();
        for _ in 0..2 {
            for &b in &blocks {
                h.fetch(b);
            }
        }
        let mem = blocks
            .iter()
            .filter(|&&b| h.fetch(b) == HitLevel::Memory)
            .count();
        assert!(mem > 100_000, "memory fetches {mem}");
    }

    #[test]
    fn l2_impki_counts_only_l2_misses() {
        let mut h = InstrHierarchy::table1();
        h.fetch(0x0); // L1 miss, L2 miss, LLC miss
        h.fetch(0x0); // all hits
        assert_eq!(h.l2.misses, 1);
        assert!((h.l2_impki(1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn bad_geometry_rejected() {
        let _ = CacheLevel::<3>::new(100);
    }
}
