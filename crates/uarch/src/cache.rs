//! Instruction-side cache hierarchy (Table 1: 32KB/8-way L1I, 512KB/8-way
//! L2, 2MB/16-way LLC, 64-byte blocks), LRU-managed.
//!
//! The simulator only streams instructions, so the hierarchy tracks the
//! instruction path: an access that misses L1I probes L2, then LLC, then
//! memory, installing the block on the way back (inclusive fills). The
//! returned [`HitLevel`] tells the frontend which latency to charge.

/// 64-byte cache blocks.
pub const BLOCK_BYTES: u64 = 64;

/// Where an instruction-fetch access was satisfied.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Hit in the L1 instruction cache (no stall).
    L1,
    /// Missed L1, hit the unified L2.
    L2,
    /// Missed L2, hit the last-level cache.
    Llc,
    /// Missed everywhere: fetched from DRAM.
    Memory,
}

/// A single set-associative, LRU-managed cache level.
#[derive(Clone, Debug)]
pub struct CacheLevel {
    sets: usize,
    ways: usize,
    /// tags[set * ways + way], `u64::MAX` = invalid.
    tags: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    /// Demand + prefetch lookups.
    pub accesses: u64,
    /// Lookups that missed this level.
    pub misses: u64,
}

impl CacheLevel {
    /// Creates a level of `size_bytes` capacity and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into whole sets.
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        let blocks = size_bytes / BLOCK_BYTES as usize;
        assert!(
            ways > 0 && blocks.is_multiple_of(ways),
            "invalid cache geometry: {size_bytes}B / {ways} ways"
        );
        let sets = blocks / ways;
        Self {
            sets,
            ways,
            tags: vec![u64::MAX; blocks],
            stamps: vec![0; blocks],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }

    /// Looks up `block`; on miss, installs it (evicting LRU). Returns
    /// whether it hit.
    pub fn access(&mut self, block: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let set = self.set_of(block);
        let base = set * self.ways;
        let row = &mut self.tags[base..base + self.ways];
        if let Some(w) = row.iter().position(|&t| t == block) {
            self.stamps[base + w] = self.clock;
            return true;
        }
        self.misses += 1;
        let victim = (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("cache set non-empty");
        self.tags[base + victim] = block;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Whether `block` is resident, without updating LRU or counters.
    pub fn contains(&self, block: u64) -> bool {
        let set = self.set_of(block);
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&block)
    }
}

/// The three-level instruction hierarchy.
#[derive(Clone, Debug)]
pub struct InstrHierarchy {
    /// L1 instruction cache.
    pub l1i: CacheLevel,
    /// Unified L2 (instruction path only in this model).
    pub l2: CacheLevel,
    /// Last-level cache.
    pub llc: CacheLevel,
}

impl InstrHierarchy {
    /// The Table 1 hierarchy. (L1I is 32KB/8-way; Table 1's 48KB/12-way L1D
    /// is irrelevant to the instruction path.)
    pub fn table1() -> Self {
        Self {
            l1i: CacheLevel::new(32 * 1024, 8),
            l2: CacheLevel::new(512 * 1024, 8),
            llc: CacheLevel::new(2 * 1024 * 1024, 16),
        }
    }

    /// Fetches the block containing `addr`, returning where it hit and
    /// installing it in every level above.
    pub fn fetch(&mut self, addr: u64) -> HitLevel {
        let block = addr / BLOCK_BYTES;
        if self.l1i.access(block) {
            HitLevel::L1
        } else if self.l2.access(block) {
            HitLevel::L2
        } else if self.llc.access(block) {
            HitLevel::Llc
        } else {
            HitLevel::Memory
        }
    }

    /// Instruction misses at the L2 level per kilo-instruction — the
    /// paper's L2iMPKI metric (Fig. 3).
    pub fn l2_impki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.l2.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_fetch_hits_l1() {
        let mut h = InstrHierarchy::table1();
        assert_eq!(h.fetch(0x1000), HitLevel::Memory);
        assert_eq!(h.fetch(0x1000), HitLevel::L1);
        assert_eq!(h.fetch(0x1004), HitLevel::L1, "same 64B block");
        assert_eq!(h.fetch(0x1040), HitLevel::Memory, "next block is cold");
    }

    #[test]
    fn working_set_between_l1_and_l2_hits_l2() {
        let mut h = InstrHierarchy::table1();
        // 128KB working set: thrashes 32KB L1I, fits 512KB L2.
        let blocks: Vec<u64> = (0..2048u64).map(|i| i * 64).collect();
        for _ in 0..3 {
            for &b in &blocks {
                h.fetch(b);
            }
        }
        let mut l2_hits = 0;
        for &b in &blocks {
            if h.fetch(b) == HitLevel::L2 {
                l2_hits += 1;
            }
        }
        assert!(l2_hits > 1500, "l2 hits {l2_hits}");
    }

    #[test]
    fn giant_working_set_reaches_memory() {
        let mut h = InstrHierarchy::table1();
        // 8MB working set exceeds the 2MB LLC.
        let blocks: Vec<u64> = (0..131_072u64).map(|i| i * 64).collect();
        for _ in 0..2 {
            for &b in &blocks {
                h.fetch(b);
            }
        }
        let mem = blocks
            .iter()
            .filter(|&&b| h.fetch(b) == HitLevel::Memory)
            .count();
        assert!(mem > 100_000, "memory fetches {mem}");
    }

    #[test]
    fn l2_impki_counts_only_l2_misses() {
        let mut h = InstrHierarchy::table1();
        h.fetch(0x0); // L1 miss, L2 miss, LLC miss
        h.fetch(0x0); // all hits
        assert_eq!(h.l2.misses, 1);
        assert!((h.l2_impki(1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn bad_geometry_rejected() {
        let _ = CacheLevel::new(100, 3);
    }
}
