//! Indirect Branch Target Buffer (4096 entries per Table 1).
//!
//! A hybrid indirect target predictor in the ITTAGE spirit, sized to the
//! paper's 4096-entry budget split across two halves:
//!
//! * a **last-target** table indexed by PC — perfect for monomorphic sites,
//! * a **path** table indexed by PC hashed with a short history of recent
//!   indirect targets — captures polymorphic sites (virtual dispatch,
//!   interpreter loops) whose target correlates with the calling context.
//!
//! Prediction prefers a matching path entry, falling back to last-target.

/// A hybrid last-target + path-history indirect target predictor.
#[derive(Clone, Debug)]
pub struct Ibtb {
    last: Vec<Option<(u64, u64)>>, // (tag=pc, target)
    path_table: Vec<Option<(u64, u64)>>,
    mask: u64,
    /// Folded history of recent indirect targets.
    path: u64,
}

impl Ibtb {
    /// Creates an IBTB with `entries` total slots (rounded up so each half
    /// is a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "IBTB needs at least one entry");
        let half = (entries / 2).max(1).next_power_of_two();
        Self {
            last: vec![None; half],
            path_table: vec![None; half],
            mask: (half - 1) as u64,
            path: 0,
        }
    }

    /// The Table 1 configuration: 4096 entries.
    pub fn table1() -> Self {
        Self::new(4096)
    }

    fn last_index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    fn path_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.path.wrapping_mul(0x9e37)) & self.mask) as usize
    }

    /// Predicts the target for the indirect branch at `pc`, if any table has
    /// a matching entry under the current path.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        if let Some((tag, target)) = self.path_table[self.path_index(pc)] {
            if tag == pc {
                return Some(target);
            }
        }
        let (tag, target) = self.last[self.last_index(pc)]?;
        (tag == pc).then_some(target)
    }

    /// Installs the resolved target in both tables and advances the path
    /// history.
    pub fn update(&mut self, pc: u64, target: u64) {
        let li = self.last_index(pc);
        let pi = self.path_index(pc);
        self.last[li] = Some((pc, target));
        self.path_table[pi] = Some((pc, target));
        self.path = (self.path << 3) ^ (target >> 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_after_update() {
        let mut ibtb = Ibtb::new(64);
        assert_eq!(ibtb.predict(0x100), None);
        ibtb.update(0x100, 0x900);
        assert_eq!(ibtb.predict(0x100), Some(0x900));
    }

    #[test]
    fn monomorphic_site_is_stable() {
        let mut ibtb = Ibtb::new(64);
        ibtb.update(0x200, 0x1234);
        for _ in 0..10 {
            assert_eq!(ibtb.predict(0x200), Some(0x1234));
            ibtb.update(0x200, 0x1234);
        }
    }

    #[test]
    fn path_history_separates_contexts() {
        let mut ibtb = Ibtb::new(1024);
        // Same branch alternating between two targets, each determined by
        // the preceding indirect branch's target (a stable context). The
        // path table learns both contexts; last-target alone would be ~0%.
        let mut correct = 0;
        let mut total = 0;
        for round in 0..400 {
            let ctx_target = if round % 2 == 0 { 0xaaa0 } else { 0xbbb0 };
            ibtb.update(0x50, ctx_target);
            let want = ctx_target + 0x10;
            if round > 40 {
                total += 1;
                if ibtb.predict(0x100) == Some(want) {
                    correct += 1;
                }
            }
            ibtb.update(0x100, want);
        }
        assert!(
            correct as f64 / total as f64 > 0.9,
            "correct {correct}/{total}"
        );
    }

    #[test]
    fn alternating_without_context_defeats_last_target() {
        let mut ibtb = Ibtb::new(64);
        // Strict alternation with no other indirect activity: the path
        // register cycles with period 2 after warmup, so even this is
        // learnable by the path table.
        let mut correct = 0;
        for round in 0..200 {
            let want = if round % 2 == 0 { 0x1110 } else { 0x2220 };
            if round > 50 && ibtb.predict(0x300) == Some(want) {
                correct += 1;
            }
            ibtb.update(0x300, want);
        }
        assert!(correct > 100, "correct {correct}");
    }
}
