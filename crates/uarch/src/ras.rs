//! Return Address Stack (32 entries per Table 1).

/// A circular return-address stack: calls push, returns pop-and-predict.
/// Overflow silently wraps (oldest entries are lost), underflow predicts
/// nothing — both are real-hardware behaviours that surface as return
/// mispredictions on deep or unbalanced call chains.
#[derive(Clone, Debug)]
pub struct Ras {
    entries: Vec<u64>,
    top: usize,
    depth: usize,
}

impl Ras {
    /// Creates a RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be positive");
        Self {
            entries: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// The Table 1 configuration: 32 entries.
    pub fn table1() -> Self {
        Self::new(32)
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, return_addr: u64) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = return_addr;
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pops the predicted return address (on a return); `None` when empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let addr = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(addr)
    }

    /// Current number of live entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Empties the stack (e.g. after a pipeline flush with RAS repair
    /// disabled).
    pub fn clear(&mut self) {
        self.depth = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = Ras::new(8);
        ras.push(0x10);
        ras.push(0x20);
        assert_eq!(ras.pop(), Some(0x20));
        assert_eq!(ras.pop(), Some(0x10));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_wraps_losing_oldest() {
        let mut ras = Ras::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        // Third pop returns the stale slot or nothing; depth hit capacity 2.
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn matched_deep_nesting_within_capacity_is_exact() {
        let mut ras = Ras::table1();
        for i in 0..32u64 {
            ras.push(0x1000 + i);
        }
        assert_eq!(ras.depth(), 32);
        for i in (0..32u64).rev() {
            assert_eq!(ras.pop(), Some(0x1000 + i));
        }
    }

    #[test]
    fn clear_empties() {
        let mut ras = Ras::new(4);
        ras.push(7);
        ras.clear();
        assert_eq!(ras.pop(), None);
    }
}
