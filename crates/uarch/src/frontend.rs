//! The decoupled-frontend (FDIP) simulation loop.
//!
//! One pass over a branch trace, modeling (per record):
//!
//! 1. **Fetch bandwidth** — `inst_gap + 1` instructions at `fetch_width`
//!    per cycle.
//! 2. **I-cache behaviour** — every 64B block the record's instruction
//!    range touches is fetched through the hierarchy; the *run-ahead lead*
//!    (how far the BPU+prefetcher run ahead of fetch, bounded by the FTQ)
//!    hides miss latency. Frontend squashes collapse the lead, exposing
//!    subsequent misses — the coupling that makes BTB misses so expensive
//!    in FDIP frontends (paper §2.2).
//! 3. **Branch prediction events** — TAGE direction prediction, BTB lookup
//!    for taken branches, IBTB for indirect targets, RAS for returns. One
//!    penalty is charged per record (the most severe event: direction
//!    flush > target flush > BTB-miss re-steer), and any squash zeroes the
//!    lead.
//!
//! The per-branch Thermometer hint (if a hint table is installed) rides
//! into the BTB through [`AccessContext::hint`].

use sim_support::DetHashMap;

use btb_model::{
    AccessContext, AccessOutcome, Btb, BtbConfig, BtbEntry, BtbInterface, BtbStats,
    ReplacementPolicy,
};
use btb_trace::{next_use::NEVER, BranchKind, NextUseOracle, Trace};

use crate::cache::{HitLevel, InstrHierarchy, BLOCK_BYTES};
use crate::ibtb::Ibtb;
use crate::prefetch::Prefetcher;
use crate::ras::Ras;
use crate::report::SimReport;
use crate::timing::TimingConfig;

/// Limit-study switches (paper Fig. 2).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PerfectOptions {
    /// Every BTB access hits (no re-steers; replacement is bypassed).
    pub btb: bool,
    /// Every conditional direction is predicted correctly.
    pub branch_predictor: bool,
    /// Every instruction fetch hits L1I.
    pub icache: bool,
}

/// Full frontend configuration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FrontendConfig {
    /// Timing parameters.
    pub timing: TimingConfig,
    /// BTB geometry.
    pub btb: BtbConfig,
    /// Limit-study switches.
    pub perfect: PerfectOptions,
}

impl FrontendConfig {
    /// The paper's Table 1 configuration with no perfect structures.
    pub fn table1() -> Self {
        Self {
            timing: TimingConfig::table1(),
            btb: BtbConfig::table1(),
            perfect: PerfectOptions::default(),
        }
    }
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self::table1()
    }
}

/// The trace-driven frontend simulator, generic over the BTB organization.
pub struct Frontend<B> {
    config: FrontendConfig,
    btb: B,
    tage: crate::tage::Tage,
    ras: Ras,
    ibtb: Ibtb,
    icache: InstrHierarchy,
    prefetcher: Option<Box<dyn Prefetcher>>,
    /// Looked up per branch record (hot); never iterated, so the seeded
    /// O(1) map is safe.
    hints: Option<DetHashMap<u64, u8>>,
}

impl<P: ReplacementPolicy> Frontend<Btb<P>> {
    /// Creates a frontend around a plain BTB running `policy`.
    pub fn new(config: FrontendConfig, policy: P) -> Self {
        let btb = Btb::new(config.btb, policy);
        Self::with_btb(config, btb)
    }
}

impl<B: BtbInterface> Frontend<B> {
    /// Creates a frontend around an arbitrary BTB organization (e.g.
    /// Shotgun's partitioned BTB).
    pub fn with_btb(config: FrontendConfig, btb: B) -> Self {
        config
            .timing
            .validate()
            .expect("invalid timing configuration");
        Self {
            config,
            btb,
            tage: crate::tage::Tage::new(),
            ras: Ras::table1(),
            ibtb: Ibtb::table1(),
            icache: InstrHierarchy::table1(),
            prefetcher: None,
            hints: None,
        }
    }

    /// Installs a BTB prefetcher (Confluence/Twig style).
    pub fn set_prefetcher(&mut self, prefetcher: Box<dyn Prefetcher>) {
        self.prefetcher = Some(prefetcher);
    }

    /// Installs a Thermometer hint table (branch PC → temperature category,
    /// 0 = coldest).
    pub fn set_hints(&mut self, hints: DetHashMap<u64, u8>) {
        self.hints = Some(hints);
    }

    /// The BTB, for post-run inspection.
    pub fn btb(&self) -> &B {
        &self.btb
    }

    /// Simulates the trace once and reports. For Belady's OPT the caller
    /// must pass the trace's [`NextUseOracle`]; online policies pass `None`.
    ///
    /// A `Frontend` is single-shot: construct a fresh one per run (learned
    /// predictor state would otherwise leak across runs).
    pub fn run(&mut self, trace: &Trace, oracle: Option<&NextUseOracle>) -> SimReport {
        let t = self.config.timing;
        let max_lead = t.max_lead();
        let mut report = SimReport {
            workload: trace.name().to_owned(),
            ..SimReport::default()
        };

        let mut cycles = 0.0f64;
        let mut lead = 0.0f64; // run-ahead shield, cycles
        let mut access_index: u64 = 0; // position in the taken stream

        // Division by a power of two is exact, and so is multiplying by its
        // (exactly representable) reciprocal — bit-identical results without
        // a per-record divide. Non-power-of-two widths keep the division.
        let fetch_width = f64::from(t.fetch_width);
        let inv_fetch_width = (t.fetch_width.is_power_of_two()).then(|| 1.0 / fetch_width);

        for r in trace.records() {
            let insts = u64::from(r.inst_gap) + 1;
            report.instructions += insts;
            let base = match inv_fetch_width {
                Some(inv) => insts as f64 * inv,
                None => insts as f64 / fetch_width,
            };
            cycles += base;
            // The BPU produces one record per bpu_cycles_per_branch while
            // fetch consumes it in `base` cycles: lead grows on big blocks,
            // shrinks on branchy code.
            lead = (lead + base - t.bpu_cycles_per_branch).clamp(0.0, max_lead);

            // --- I-cache walk over the record's instruction range ---
            if !self.config.perfect.icache {
                let start = r.pc.saturating_sub(u64::from(r.inst_gap) * 4);
                let first_block = start / BLOCK_BYTES;
                let last_block = r.pc / BLOCK_BYTES;
                let mut block = first_block;
                while block <= last_block {
                    let level = self.icache.fetch_block(block);
                    block += 1;
                    let latency = match level {
                        HitLevel::L1 => 0,
                        HitLevel::L2 => t.l2_latency,
                        HitLevel::Llc => t.llc_latency,
                        HitLevel::Memory => t.memory_latency,
                    };
                    if latency > 0 {
                        // With the shield up, the FTQ's prefetches overlap:
                        // a miss stream costs latency/mlp per block. With
                        // the shield down (right after a squash) the first
                        // block is a serialized demand miss.
                        let effective = if lead > 0.0 {
                            f64::from(latency) / f64::from(t.prefetch_mlp)
                        } else {
                            f64::from(latency)
                        };
                        let stall = (effective - lead).max(0.0);
                        cycles += stall;
                        report.icache_stall_cycles += stall;
                        // Fetch stalled while the BPU kept running: the
                        // shield regrows by the stall we just served.
                        lead = (lead + stall).min(max_lead);
                    }
                }
            }

            // --- Branch prediction events ---
            let mut direction_flush = false;
            if r.kind.is_conditional() {
                report.cond_branches += 1;
                let pred = self.tage.predict(r.pc);
                let mispredicted = pred.taken != r.taken;
                self.tage.update(r.pc, r.taken, pred);
                if mispredicted && !self.config.perfect.branch_predictor {
                    report.cond_mispredicts += 1;
                    direction_flush = true;
                }
            } else {
                self.tage.note_taken_transfer(r.pc);
            }

            let mut target_flush = false;
            let mut btb_missed = false;
            if r.taken {
                let outcome = if self.config.perfect.btb {
                    report.btb.accesses += 1;
                    report.btb.hits += 1;
                    AccessOutcome::Hit {
                        target_matched: true,
                    }
                } else {
                    let hint = self
                        .hints
                        .as_ref()
                        .and_then(|h| h.get(&r.pc))
                        .copied()
                        .unwrap_or(0);
                    let next_use = oracle.map_or(NEVER, |o| o.next_use(access_index as usize));
                    let ctx = AccessContext {
                        pc: r.pc,
                        target: r.target,
                        kind: r.kind,
                        hint,
                        next_use,
                        access_index,
                    };
                    let mut outcome = self.btb.access(&ctx);
                    if let Some(pf) = self.prefetcher.as_mut() {
                        // A miss served by the prefetcher's staging buffer
                        // costs nothing: the target was prefetched and is
                        // ready at lookup time.
                        if outcome.is_miss() && pf.buffer_hit(r.pc) {
                            report.btb_buffer_hits += 1;
                            outcome = AccessOutcome::Hit {
                                target_matched: true,
                            };
                        }
                        // Prefetched entries carry their true instruction
                        // hint (the hint lives in the branch instruction
                        // bytes, so any fill path sees it).
                        let mut hinted = HintedBtb {
                            btb: &mut self.btb,
                            hints: self.hints.as_ref(),
                        };
                        pf.on_branch(r, outcome, &mut hinted);
                    }
                    outcome
                };
                access_index += 1;
                btb_missed = outcome.is_miss();

                // Target prediction (only meaningful on a BTB hit: without
                // an entry the frontend did not even know a branch was
                // here, which the BTB-miss penalty already covers).
                match r.kind {
                    BranchKind::IndirectJump | BranchKind::IndirectCall => {
                        report.indirect_branches += 1;
                        if !btb_missed {
                            let predicted = self.ibtb.predict(r.pc);
                            if predicted != Some(r.target) {
                                report.indirect_mispredicts += 1;
                                target_flush = true;
                            }
                        }
                        self.ibtb.update(r.pc, r.target);
                    }
                    BranchKind::Return => {
                        report.returns += 1;
                        let predicted = self.ras.pop();
                        if !btb_missed && predicted != Some(r.target) {
                            report.return_mispredicts += 1;
                            target_flush = true;
                        }
                    }
                    _ => {
                        if let AccessOutcome::Hit {
                            target_matched: false,
                        } = outcome
                        {
                            // Stale direct-branch entry (aliasing): treated
                            // as a target flush.
                            target_flush = true;
                        }
                    }
                }
                if r.kind.is_call() {
                    self.ras.push(r.pc + 4);
                }
            }

            // --- Charge the most severe event once; any squash kills the
            // run-ahead shield. ---
            if direction_flush {
                cycles += f64::from(t.cond_mispredict_penalty);
                report.direction_stall_cycles += f64::from(t.cond_mispredict_penalty);
                lead = 0.0;
            } else if target_flush {
                cycles += f64::from(t.target_mispredict_penalty);
                report.target_stall_cycles += f64::from(t.target_mispredict_penalty);
                lead = 0.0;
            } else if btb_missed {
                cycles += f64::from(t.btb_miss_penalty);
                report.btb_stall_cycles += f64::from(t.btb_miss_penalty);
                lead = 0.0;
            }
        }

        report.cycles = cycles;
        if !self.config.perfect.btb {
            report.btb = self.btb.stats();
        }
        report.l1i_misses = self.icache.l1i.misses;
        report.l2i_misses = self.icache.l2.misses;
        report.llc_misses = self.icache.llc.misses;
        report
    }
}

/// Adapter that injects instruction hints into prefetch fills, so a BTB
/// prefetcher installs entries with their true temperature rather than the
/// coldest category (which Thermometer would otherwise evict or reject
/// immediately).
struct HintedBtb<'a, B> {
    btb: &'a mut B,
    hints: Option<&'a DetHashMap<u64, u8>>,
}

impl<B: BtbInterface> BtbInterface for HintedBtb<'_, B> {
    fn access(&mut self, ctx: &AccessContext) -> AccessOutcome {
        self.btb.access(ctx)
    }

    fn probe(&self, pc: u64) -> Option<BtbEntry> {
        self.btb.probe(pc)
    }

    fn prefetch_fill(&mut self, pc: u64, target: u64, kind: BranchKind) -> bool {
        match self.hints.and_then(|h| h.get(&pc)).copied() {
            Some(hint) if hint > 0 => self.btb.prefetch_fill_hinted(pc, target, kind, hint),
            _ => self.btb.prefetch_fill(pc, target, kind),
        }
    }

    fn stats(&self) -> BtbStats {
        self.btb.stats()
    }

    fn capacity(&self) -> usize {
        self.btb.capacity()
    }

    fn clear(&mut self) {
        self.btb.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btb_model::policies::{BeladyOpt, Lru as LruPolicy};
    use btb_trace::BranchRecord;

    /// A loop of `n` taken branches in distinct blocks.
    fn loop_trace(n: u64, rounds: u64, gap: u32) -> Trace {
        let mut t = Trace::new("loop");
        for _ in 0..rounds {
            for i in 0..n {
                t.push(BranchRecord::taken(
                    0x10000 + i * 256,
                    0x10000 + ((i + 1) % n) * 256,
                    BranchKind::UncondDirect,
                    gap,
                ));
            }
        }
        t
    }

    #[test]
    fn instruction_count_matches_trace() {
        let trace = loop_trace(8, 10, 5);
        let mut fe = Frontend::new(FrontendConfig::table1(), LruPolicy::new());
        let report = fe.run(&trace, None);
        assert_eq!(report.instructions, trace.instruction_count());
        assert!(report.cycles > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = loop_trace(100, 20, 3);
        let run = || Frontend::new(FrontendConfig::table1(), LruPolicy::new()).run(&trace, None);
        assert_eq!(run(), run());
    }

    #[test]
    fn perfect_btb_is_never_slower() {
        let trace = loop_trace(20_000, 4, 3); // thrash the 8K BTB
        let base = Frontend::new(FrontendConfig::table1(), LruPolicy::new()).run(&trace, None);
        let mut cfg = FrontendConfig::table1();
        cfg.perfect.btb = true;
        let perfect = Frontend::new(cfg, LruPolicy::new()).run(&trace, None);
        assert!(
            perfect.ipc() > base.ipc(),
            "perfect {:.3} vs base {:.3}",
            perfect.ipc(),
            base.ipc()
        );
        assert_eq!(perfect.btb_stall_cycles, 0.0);
        assert_eq!(perfect.btb.misses, 0);
    }

    #[test]
    fn perfect_icache_removes_icache_stalls() {
        let trace = loop_trace(20_000, 4, 9);
        let mut cfg = FrontendConfig::table1();
        cfg.perfect.icache = true;
        let r = Frontend::new(cfg, LruPolicy::new()).run(&trace, None);
        assert_eq!(r.icache_stall_cycles, 0.0);
        assert_eq!(r.l1i_misses, 0);
    }

    #[test]
    fn opt_beats_lru_on_btb_thrash() {
        let trace = loop_trace(10_000, 8, 3);
        let oracle = NextUseOracle::build(&trace);
        let lru = Frontend::new(FrontendConfig::table1(), LruPolicy::new()).run(&trace, None);
        let opt =
            Frontend::new(FrontendConfig::table1(), BeladyOpt::new()).run(&trace, Some(&oracle));
        assert!(
            opt.btb.misses < lru.btb.misses,
            "opt misses {} vs lru {}",
            opt.btb.misses,
            lru.btb.misses
        );
        assert!(opt.ipc() > lru.ipc());
    }

    #[test]
    fn small_loop_has_no_steady_state_stalls() {
        // 16 branches fit everywhere: after warmup, IPC approaches the
        // fetch-bandwidth bound (one 6-instruction record per cycle).
        let trace = loop_trace(16, 10_000, 5);
        let r = Frontend::new(FrontendConfig::table1(), LruPolicy::new()).run(&trace, None);
        let bound = 6.0;
        assert!(r.ipc() > 0.9 * bound, "ipc {:.2} vs bound {bound}", r.ipc());
        // All stall cycles stem from the 16-record warmup.
        assert_eq!(r.btb.misses, 16);
    }

    #[test]
    fn returns_predicted_by_ras() {
        // call -> ret pairs, well-nested: no return mispredicts after the
        // BTB warms up.
        let mut trace = Trace::new("callret");
        for _ in 0..500 {
            trace.push(BranchRecord::taken(
                0x1000,
                0x2000,
                BranchKind::DirectCall,
                3,
            ));
            trace.push(BranchRecord::taken(0x2010, 0x1004, BranchKind::Return, 3));
        }
        let r = Frontend::new(FrontendConfig::table1(), LruPolicy::new()).run(&trace, None);
        assert_eq!(r.returns, 500);
        assert!(
            r.return_mispredicts <= 1,
            "ras mispredicts {}",
            r.return_mispredicts
        );
    }

    #[test]
    fn big_code_footprint_shows_icache_pressure() {
        // Unique blocks, one pass: everything cold-misses.
        let mut trace = Trace::new("cold");
        for i in 0..50_000u64 {
            trace.push(BranchRecord::taken(
                0x100000 + i * 64,
                0x100000 + (i + 1) * 64,
                BranchKind::UncondDirect,
                10,
            ));
        }
        let r = Frontend::new(FrontendConfig::table1(), LruPolicy::new()).run(&trace, None);
        assert!(r.l1i_misses > 40_000);
        assert!(r.l2i_misses > 40_000);
        assert!(r.icache_stall_cycles > 0.0);
    }

    #[test]
    fn hints_reach_the_btb() {
        use btb_model::{BtbEntry, Geometry, Victim};

        /// A policy that records the hints it saw.
        #[derive(Default)]
        struct HintSpy {
            seen: std::cell::RefCell<Vec<u8>>,
            lru: LruPolicy,
        }
        impl ReplacementPolicy for HintSpy {
            fn name(&self) -> &'static str {
                "spy"
            }
            fn reset(&mut self, g: &Geometry) {
                self.lru.reset(g);
            }
            fn on_hit(&mut self, s: usize, w: usize, c: &AccessContext) {
                self.seen.borrow_mut().push(c.hint);
                self.lru.on_hit(s, w, c);
            }
            fn on_fill(&mut self, s: usize, w: usize, c: &AccessContext) {
                self.seen.borrow_mut().push(c.hint);
                self.lru.on_fill(s, w, c);
            }
            fn choose_victim(&mut self, s: usize, r: &[BtbEntry], c: &AccessContext) -> Victim {
                self.lru.choose_victim(s, r, c)
            }
            fn on_replace(&mut self, s: usize, w: usize, e: &BtbEntry, c: &AccessContext) {
                self.lru.on_replace(s, w, e, c);
            }
        }

        let mut trace = Trace::new("hints");
        trace.push(BranchRecord::taken(
            0x100,
            0x200,
            BranchKind::UncondDirect,
            1,
        ));
        trace.push(BranchRecord::taken(
            0x104,
            0x300,
            BranchKind::UncondDirect,
            0,
        ));
        let mut fe = Frontend::new(FrontendConfig::table1(), HintSpy::default());
        fe.set_hints([(0x100u64, 2u8)].into_iter().collect());
        fe.run(&trace, None);
        assert_eq!(*fe.btb().policy().seen.borrow(), vec![2, 0]);
    }
}
