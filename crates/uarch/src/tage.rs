//! TAGE-lite conditional branch direction predictor with a local component.
//!
//! A faithful-in-structure but reduced-size TAGE (Seznec's TAgged GEometric
//! predictor, the family the paper's 64KB TAGE-SC-L baseline belongs to): a
//! bimodal base table plus tagged tables indexed by geometrically growing
//! global-history lengths. Prediction comes from the longest-history tagged
//! table that matches; allocation on mispredict moves the branch to longer
//! histories.
//!
//! Full TAGE-SC-L additionally carries local-history components (the loop
//! predictor and local tables of the statistical corrector). Those matter
//! enormously on server workloads: requests interleave so the *global*
//! history at a branch is near-random even when the branch's *own* outcome
//! sequence is perfectly periodic. We model that with a per-branch local
//! history indexing a counter table; a confident local prediction overrides
//! TAGE. This puts direction accuracy in the 97-99% band, leaving BTB
//! misses (not direction) as the frontend bottleneck — matching the
//! paper's Fig. 2 (perfect BP buys much less than a perfect BTB).

/// Geometric history lengths of the tagged tables.
const HISTORY_LENGTHS: [u32; 4] = [8, 16, 32, 64];
/// log2 entries per tagged table (4 x 4K x ~14 bits + bimodal ~ the paper's
/// 64KB TAGE-SC-L budget).
const TAGGED_BITS: u32 = 12;
/// log2 entries of the bimodal base table.
const BIMODAL_BITS: u32 = 16;
/// Tag width.
const TAG_BITS: u32 = 9;
/// Per-branch local history bits.
const LOCAL_HISTORY_BITS: u32 = 16;
/// log2 entries of the local history table (per-PC).
const LOCAL_HIST_ENTRIES_BITS: u32 = 14;
/// log2 entries of the local prediction table.
const LOCAL_TABLE_BITS: u32 = 16;

#[derive(Copy, Clone, Debug, Default)]
struct TaggedEntry {
    tag: u16,
    /// 3-bit signed counter, taken if >= 0 (stored biased: 0..=7, taken >= 4).
    ctr: u8,
    /// 2-bit usefulness counter.
    useful: u8,
}

/// The predictor.
#[derive(Clone, Debug)]
pub struct Tage {
    /// Boxed fixed-size arrays throughout: every index is a masked hash, so
    /// with the length in the type the compiler proves each access in
    /// bounds and the hot path carries no bounds checks.
    bimodal: Box<[u8; 1 << BIMODAL_BITS]>,
    /// All tagged tables in one flat array; table `t` occupies
    /// `t << TAGGED_BITS ..`. One allocation, no per-table pointer chase.
    tagged: Box<[TaggedEntry; HISTORY_LENGTHS.len() << TAGGED_BITS]>,
    /// Global direction history (1 bit per branch), youngest in bit 0.
    history: u128,
    /// Deterministic allocation tie-break state.
    alloc_seed: u64,
    /// Per-branch local direction histories.
    local_hist: Box<[u16; 1 << LOCAL_HIST_ENTRIES_BITS]>,
    /// Local prediction counters indexed by (pc, local history).
    local_table: Box<[u8; 1 << LOCAL_TABLE_BITS]>,
}

/// What a prediction was based on, fed back into [`Tage::update`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Which tagged table provided it (`None` = bimodal).
    provider: Option<usize>,
    /// Index within the provider table.
    index: usize,
    /// The TAGE component's direction (before local override).
    tage_taken: bool,
    /// Local component state captured at predict time, so update need not
    /// recompute the two hash indices (the contract already requires update
    /// to follow predict on the same branch under the same history).
    local_hist_idx: usize,
    local_table_idx: usize,
    local_hist: u16,
}

impl Default for Tage {
    fn default() -> Self {
        Self::new()
    }
}

impl Tage {
    /// Creates a predictor with all counters weakly not-taken.
    pub fn new() -> Self {
        Self {
            bimodal: vec![1; 1 << BIMODAL_BITS].try_into().expect("bimodal size"),
            tagged: vec![TaggedEntry::default(); HISTORY_LENGTHS.len() << TAGGED_BITS]
                .try_into()
                .expect("tagged size"),
            history: 0,
            alloc_seed: 0x1234_5678_9abc_def0,
            local_hist: vec![0; 1 << LOCAL_HIST_ENTRIES_BITS]
                .try_into()
                .expect("local history size"),
            local_table: vec![4; 1 << LOCAL_TABLE_BITS]
                .try_into()
                .expect("local table size"),
        }
    }

    fn local_hist_index(pc: u64) -> usize {
        let mut h = pc.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 31;
        (h & ((1 << LOCAL_HIST_ENTRIES_BITS) - 1)) as usize
    }

    fn local_table_index(pc: u64, hist: u16) -> usize {
        // Mix pc and history multiplicatively and fold the high bits down:
        // integer multiplication only propagates carries upward, so without
        // the final fold the low index bits would ignore the history.
        let mut h = pc
            .wrapping_mul(0xff51_afd7_ed55_8ccd)
            .wrapping_add(u64::from(hist).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        (h & ((1 << LOCAL_TABLE_BITS) - 1)) as usize
    }

    /// Generic xor-fold of the low `bits` of history into `out_bits` — the
    /// readable reference the const-specialized [`fold_u64`] is pinned
    /// against in the tests. Not used on the predict path.
    #[cfg(test)]
    fn folded_history(&self, bits: u32, out_bits: u32) -> u64 {
        let mut h = self.history & ((1u128 << bits) - 1);
        let mut folded = 0u64;
        while h != 0 {
            folded ^= (h & ((1u128 << out_bits) - 1)) as u64;
            h >>= out_bits;
        }
        folded
    }

    /// Folded history for `table`'s index hash. Every history length fits
    /// in 64 bits, so this dispatches to a `u64` fold whose chunk count is
    /// a compile-time constant per table (fully unrolled xor terms, no
    /// `u128` arithmetic, no data-dependent loop).
    #[inline]
    fn fold_index(&self, table: usize) -> u64 {
        let h = self.history as u64;
        match table {
            0 => fold_u64::<8, TAGGED_BITS>(h),
            1 => fold_u64::<16, TAGGED_BITS>(h),
            2 => fold_u64::<32, TAGGED_BITS>(h),
            _ => fold_u64::<64, TAGGED_BITS>(h),
        }
    }

    /// Folded history for `table`'s tag hash (see [`Tage::fold_index`]).
    #[inline]
    fn fold_tag(&self, table: usize) -> u64 {
        let h = self.history as u64;
        match table {
            0 => fold_u64::<8, TAG_BITS>(h),
            1 => fold_u64::<16, TAG_BITS>(h),
            2 => fold_u64::<32, TAG_BITS>(h),
            _ => fold_u64::<64, TAG_BITS>(h),
        }
    }

    fn tagged_index(&self, pc: u64, table: usize) -> usize {
        let fh = self.fold_index(table);
        let mix = pc ^ (pc >> TAGGED_BITS) ^ fh ^ ((table as u64) << 3);
        (mix & ((1 << TAGGED_BITS) - 1)) as usize
    }

    fn tag_of(&self, pc: u64, table: usize) -> u16 {
        let fh = self.fold_tag(table);
        (((pc >> 2) ^ (pc >> (TAG_BITS + 2)) ^ (fh << 1)) & ((1 << TAG_BITS) - 1)) as u16
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << BIMODAL_BITS) - 1)) as usize
    }

    /// Flat-array slot of entry `idx` in tagged table `table`.
    #[inline]
    fn slot(table: usize, idx: usize) -> usize {
        (table << TAGGED_BITS) | idx
    }

    /// Hints that `pc` will be predicted soon. Warms the tables whose index
    /// depends only on the PC (bimodal, local history); the tagged-table
    /// indices also hash the global history, which is unknown that far
    /// ahead. No architectural effect.
    #[inline]
    pub fn warm(&self, pc: u64) {
        sim_support::prefetch_read(&raw const self.bimodal[self.bimodal_index(pc)]);
        sim_support::prefetch_read(&raw const self.local_hist[Self::local_hist_index(pc)]);
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> Prediction {
        let mut pred = self.tage_predict(pc);
        // A *confident* local-pattern prediction overrides TAGE: the local
        // counter is saturated only when (pc, local history) has been a
        // reliable predictor of the outcome.
        let hi = Self::local_hist_index(pc);
        let hist = self.local_hist[hi];
        let li = Self::local_table_index(pc, hist);
        let local = self.local_table[li];
        if local == 0 || local == 7 {
            pred.taken = local >= 4;
        }
        pred.local_hist_idx = hi;
        pred.local_table_idx = li;
        pred.local_hist = hist;
        pred
    }

    fn tage_predict(&self, pc: u64) -> Prediction {
        // All four probes are independent: computing every index and tag up
        // front lets the four table loads issue together instead of
        // serializing through an early-exit scan. Provider selection
        // (longest matching history wins) is unchanged.
        let idx = [
            self.tagged_index(pc, 0),
            self.tagged_index(pc, 1),
            self.tagged_index(pc, 2),
            self.tagged_index(pc, 3),
        ];
        let tag = [
            self.tag_of(pc, 0),
            self.tag_of(pc, 1),
            self.tag_of(pc, 2),
            self.tag_of(pc, 3),
        ];
        let entry = [
            self.tagged[Self::slot(0, idx[0])],
            self.tagged[Self::slot(1, idx[1])],
            self.tagged[Self::slot(2, idx[2])],
            self.tagged[Self::slot(3, idx[3])],
        ];
        for table in (0..HISTORY_LENGTHS.len()).rev() {
            let e = entry[table];
            if e.tag == tag[table] {
                return Prediction {
                    taken: e.ctr >= 4,
                    provider: Some(table),
                    index: idx[table],
                    tage_taken: e.ctr >= 4,
                    local_hist_idx: 0,
                    local_table_idx: 0,
                    local_hist: 0,
                };
            }
        }
        let idx = self.bimodal_index(pc);
        Prediction {
            taken: self.bimodal[idx] >= 2,
            provider: None,
            index: idx,
            tage_taken: self.bimodal[idx] >= 2,
            local_hist_idx: 0,
            local_table_idx: 0,
            local_hist: 0,
        }
    }

    /// Trains the predictor with the resolved direction and advances the
    /// global history. `prediction` must come from [`Tage::predict`] on the
    /// same branch under the same history.
    pub fn update(&mut self, pc: u64, taken: bool, prediction: Prediction) {
        // Local component: train the counter for the current (pc, local
        // history) point and shift the local history. The indices were
        // captured at predict time.
        let hi = prediction.local_hist_idx;
        let li = prediction.local_table_idx;
        self.local_table[li] = bump3(self.local_table[li], taken);
        self.local_hist[hi] = ((prediction.local_hist << 1) | u16::from(taken))
            & ((1 << LOCAL_HISTORY_BITS) - 1) as u16;

        let correct = prediction.tage_taken == taken;
        match prediction.provider {
            Some(t) => {
                let e = &mut self.tagged[Self::slot(t, prediction.index)];
                e.ctr = bump3(e.ctr, taken);
                e.useful = if correct {
                    (e.useful + 1).min(3)
                } else {
                    e.useful.saturating_sub(1)
                };
            }
            None => {
                let idx = prediction.index;
                self.bimodal[idx] = bump2(self.bimodal[idx], taken);
            }
        }
        // Allocate a longer-history entry on a mispredict.
        if !correct {
            let start = prediction.provider.map_or(0, |t| t + 1);
            if start < HISTORY_LENGTHS.len() {
                self.alloc_seed = self
                    .alloc_seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1);
                let mut allocated = false;
                for t in start..HISTORY_LENGTHS.len() {
                    let idx = self.tagged_index(pc, t);
                    let tag = self.tag_of(pc, t);
                    let e = &mut self.tagged[Self::slot(t, idx)];
                    if e.useful == 0 {
                        *e = TaggedEntry {
                            tag,
                            ctr: if taken { 4 } else { 3 },
                            useful: 0,
                        };
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    // Decay usefulness so future allocations can proceed.
                    for t in start..HISTORY_LENGTHS.len() {
                        let idx = self.tagged_index(pc, t);
                        let e = &mut self.tagged[Self::slot(t, idx)];
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
        }
        self.history = (self.history << 1) | u128::from(taken);
    }

    /// Folds a taken control-flow transfer into the history (calls, jumps —
    /// keeps tagged indices path-dependent like real frontends).
    pub fn note_taken_transfer(&mut self, _pc: u64) {
        self.history = (self.history << 1) | 1;
    }
}

/// Xor-fold of the low `BITS` of `h` into `OUT`-bit chunks. With both
/// parameters compile-time constants the chunked loop unrolls into a fixed
/// xor expression per (history length, output width) pair.
#[inline]
fn fold_u64<const BITS: u32, const OUT: u32>(mut h: u64) -> u64 {
    if BITS < 64 {
        h &= (1u64 << BITS) - 1;
    }
    let mask = (1u64 << OUT) - 1;
    let mut folded = 0u64;
    let mut shift = 0;
    while shift < BITS {
        folded ^= (h >> shift) & mask;
        shift += OUT;
    }
    folded
}

fn bump2(c: u8, up: bool) -> u8 {
    if up {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

fn bump3(c: u8, up: bool) -> u8 {
    if up {
        (c + 1).min(7)
    } else {
        c.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_support::SimRng;

    fn accuracy(stream: impl Iterator<Item = (u64, bool)>) -> f64 {
        let mut tage = Tage::new();
        let mut correct = 0u64;
        let mut total = 0u64;
        for (pc, taken) in stream {
            let p = tage.predict(pc);
            if p.taken == taken {
                correct += 1;
            }
            tage.update(pc, taken, p);
            total += 1;
        }
        correct as f64 / total as f64
    }

    #[test]
    fn const_folds_match_generic_fold() {
        // The specialized per-table folds must agree with the generic u128
        // xor-fold for every (history length, output width) pair, over
        // arbitrary histories (including ones with bits set above bit 63 —
        // no tagged table looks that far back, so they must not leak in).
        sim_support::forall!(cases: 128, gen: |rng| {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }, prop: |&history| {
            let mut tage = Tage::new();
            tage.history = history;
            for (table, &bits) in HISTORY_LENGTHS.iter().enumerate() {
                assert_eq!(
                    tage.fold_index(table),
                    tage.folded_history(bits, TAGGED_BITS),
                    "index fold diverged for table {table} ({bits} bits)"
                );
                assert_eq!(
                    tage.fold_tag(table),
                    tage.folded_history(bits, TAG_BITS),
                    "tag fold diverged for table {table} ({bits} bits)"
                );
            }
        });
    }

    #[test]
    fn learns_strongly_biased_branches() {
        let acc = accuracy((0..20_000u64).map(|i| (0x100 + (i % 16) * 8, true)));
        assert!(acc > 0.99, "biased accuracy {acc}");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // Bimodal alone is ~50% on strict alternation; tagged tables learn it.
        let acc = accuracy((0..20_000u64).map(|i| (0x400, i % 2 == 0)));
        assert!(acc > 0.95, "alternating accuracy {acc}");
    }

    #[test]
    fn learns_short_loop_trip_counts() {
        // taken x7, not-taken x1 repeating: history-correlated.
        let acc = accuracy((0..40_000u64).map(|i| (0x800, i % 8 != 7)));
        assert!(acc > 0.93, "loop accuracy {acc}");
    }

    #[test]
    fn random_branches_near_chance() {
        let mut rng = SimRng::seed_from_u64(9);
        let stream: Vec<(u64, bool)> = (0..20_000).map(|_| (0xc00, rng.gen::<bool>())).collect();
        let acc = accuracy(stream.into_iter());
        assert!((0.4..0.6).contains(&acc), "random accuracy {acc}");
    }

    #[test]
    fn mixed_workload_accuracy_is_high() {
        // A mix resembling our synthetic traces: 70% strongly biased, 20%
        // loops, 10% random.
        let mut rng = SimRng::seed_from_u64(11);
        let mut stream = Vec::new();
        for i in 0..60_000u64 {
            let class = i % 10;
            if class < 7 {
                let pc = 0x1000 + (i % 64) * 4;
                stream.push((pc, pc % 8 < 6));
            } else if class < 9 {
                stream.push((0x9000 + (i % 4) * 4, i % 6 != 5));
            } else {
                stream.push((0xf000, rng.gen::<bool>()));
            }
        }
        let acc = accuracy(stream.into_iter());
        assert!(acc > 0.9, "mixed accuracy {acc}");
    }
}
