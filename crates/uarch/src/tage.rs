//! TAGE-lite conditional branch direction predictor with a local component.
//!
//! A faithful-in-structure but reduced-size TAGE (Seznec's TAgged GEometric
//! predictor, the family the paper's 64KB TAGE-SC-L baseline belongs to): a
//! bimodal base table plus tagged tables indexed by geometrically growing
//! global-history lengths. Prediction comes from the longest-history tagged
//! table that matches; allocation on mispredict moves the branch to longer
//! histories.
//!
//! Full TAGE-SC-L additionally carries local-history components (the loop
//! predictor and local tables of the statistical corrector). Those matter
//! enormously on server workloads: requests interleave so the *global*
//! history at a branch is near-random even when the branch's *own* outcome
//! sequence is perfectly periodic. We model that with a per-branch local
//! history indexing a counter table; a confident local prediction overrides
//! TAGE. This puts direction accuracy in the 97-99% band, leaving BTB
//! misses (not direction) as the frontend bottleneck — matching the
//! paper's Fig. 2 (perfect BP buys much less than a perfect BTB).

/// Geometric history lengths of the tagged tables.
const HISTORY_LENGTHS: [u32; 4] = [8, 16, 32, 64];
/// log2 entries per tagged table (4 x 4K x ~14 bits + bimodal ~ the paper's
/// 64KB TAGE-SC-L budget).
const TAGGED_BITS: u32 = 12;
/// log2 entries of the bimodal base table.
const BIMODAL_BITS: u32 = 16;
/// Tag width.
const TAG_BITS: u32 = 9;
/// Per-branch local history bits.
const LOCAL_HISTORY_BITS: u32 = 16;
/// log2 entries of the local history table (per-PC).
const LOCAL_HIST_ENTRIES_BITS: u32 = 14;
/// log2 entries of the local prediction table.
const LOCAL_TABLE_BITS: u32 = 16;

#[derive(Copy, Clone, Debug, Default)]
struct TaggedEntry {
    tag: u16,
    /// 3-bit signed counter, taken if >= 0 (stored biased: 0..=7, taken >= 4).
    ctr: u8,
    /// 2-bit usefulness counter.
    useful: u8,
}

/// The predictor.
#[derive(Clone, Debug)]
pub struct Tage {
    bimodal: Vec<u8>,
    tagged: Vec<Vec<TaggedEntry>>,
    /// Global direction history (1 bit per branch), youngest in bit 0.
    history: u128,
    /// Deterministic allocation tie-break state.
    alloc_seed: u64,
    /// Per-branch local direction histories.
    local_hist: Vec<u16>,
    /// Local prediction counters indexed by (pc, local history).
    local_table: Vec<u8>,
}

/// What a prediction was based on, fed back into [`Tage::update`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Which tagged table provided it (`None` = bimodal).
    provider: Option<usize>,
    /// Index within the provider table.
    index: usize,
    /// The TAGE component's direction (before local override).
    tage_taken: bool,
}

impl Default for Tage {
    fn default() -> Self {
        Self::new()
    }
}

impl Tage {
    /// Creates a predictor with all counters weakly not-taken.
    pub fn new() -> Self {
        Self {
            bimodal: vec![1; 1 << BIMODAL_BITS],
            tagged: HISTORY_LENGTHS
                .iter()
                .map(|_| vec![TaggedEntry::default(); 1 << TAGGED_BITS])
                .collect(),
            history: 0,
            alloc_seed: 0x1234_5678_9abc_def0,
            local_hist: vec![0; 1 << LOCAL_HIST_ENTRIES_BITS],
            local_table: vec![4; 1 << LOCAL_TABLE_BITS],
        }
    }

    fn local_hist_index(pc: u64) -> usize {
        let mut h = pc.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 31;
        (h & ((1 << LOCAL_HIST_ENTRIES_BITS) - 1)) as usize
    }

    fn local_table_index(pc: u64, hist: u16) -> usize {
        // Mix pc and history multiplicatively and fold the high bits down:
        // integer multiplication only propagates carries upward, so without
        // the final fold the low index bits would ignore the history.
        let mut h = pc
            .wrapping_mul(0xff51_afd7_ed55_8ccd)
            .wrapping_add(u64::from(hist).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        (h & ((1 << LOCAL_TABLE_BITS) - 1)) as usize
    }

    fn folded_history(&self, bits: u32, out_bits: u32) -> u64 {
        // Fold `bits` of history into `out_bits` by xor.
        let mut h = self.history & ((1u128 << bits) - 1);
        let mut folded = 0u64;
        while h != 0 {
            folded ^= (h & ((1u128 << out_bits) - 1)) as u64;
            h >>= out_bits;
        }
        folded
    }

    fn tagged_index(&self, pc: u64, table: usize) -> usize {
        let fh = self.folded_history(HISTORY_LENGTHS[table], TAGGED_BITS);
        let mix = pc ^ (pc >> TAGGED_BITS) ^ fh ^ ((table as u64) << 3);
        (mix & ((1 << TAGGED_BITS) - 1)) as usize
    }

    fn tag_of(&self, pc: u64, table: usize) -> u16 {
        let fh = self.folded_history(HISTORY_LENGTHS[table], TAG_BITS);
        (((pc >> 2) ^ (pc >> (TAG_BITS + 2)) ^ (fh << 1)) & ((1 << TAG_BITS) - 1)) as u16
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << BIMODAL_BITS) - 1)) as usize
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> Prediction {
        let mut pred = self.tage_predict(pc);
        // A *confident* local-pattern prediction overrides TAGE: the local
        // counter is saturated only when (pc, local history) has been a
        // reliable predictor of the outcome.
        let hist = self.local_hist[Self::local_hist_index(pc)];
        let local = self.local_table[Self::local_table_index(pc, hist)];
        if local == 0 || local == 7 {
            pred.taken = local >= 4;
        }
        pred
    }

    fn tage_predict(&self, pc: u64) -> Prediction {
        for table in (0..HISTORY_LENGTHS.len()).rev() {
            let idx = self.tagged_index(pc, table);
            let e = &self.tagged[table][idx];
            if e.tag == self.tag_of(pc, table) {
                return Prediction {
                    taken: e.ctr >= 4,
                    provider: Some(table),
                    index: idx,
                    tage_taken: e.ctr >= 4,
                };
            }
        }
        let idx = self.bimodal_index(pc);
        Prediction {
            taken: self.bimodal[idx] >= 2,
            provider: None,
            index: idx,
            tage_taken: self.bimodal[idx] >= 2,
        }
    }

    /// Trains the predictor with the resolved direction and advances the
    /// global history. `prediction` must come from [`Tage::predict`] on the
    /// same branch under the same history.
    pub fn update(&mut self, pc: u64, taken: bool, prediction: Prediction) {
        // Local component: train the counter for the current (pc, local
        // history) point and shift the local history.
        let hi = Self::local_hist_index(pc);
        let hist = self.local_hist[hi];
        let li = Self::local_table_index(pc, hist);
        self.local_table[li] = bump3(self.local_table[li], taken);
        self.local_hist[hi] =
            ((hist << 1) | u16::from(taken)) & ((1 << LOCAL_HISTORY_BITS) - 1) as u16;

        let correct = prediction.tage_taken == taken;
        match prediction.provider {
            Some(t) => {
                let e = &mut self.tagged[t][prediction.index];
                e.ctr = bump3(e.ctr, taken);
                e.useful = if correct {
                    (e.useful + 1).min(3)
                } else {
                    e.useful.saturating_sub(1)
                };
            }
            None => {
                let idx = prediction.index;
                self.bimodal[idx] = bump2(self.bimodal[idx], taken);
            }
        }
        // Allocate a longer-history entry on a mispredict.
        if !correct {
            let start = prediction.provider.map_or(0, |t| t + 1);
            if start < HISTORY_LENGTHS.len() {
                self.alloc_seed = self
                    .alloc_seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1);
                let mut allocated = false;
                for t in start..HISTORY_LENGTHS.len() {
                    let idx = self.tagged_index(pc, t);
                    let tag = self.tag_of(pc, t);
                    let e = &mut self.tagged[t][idx];
                    if e.useful == 0 {
                        *e = TaggedEntry {
                            tag,
                            ctr: if taken { 4 } else { 3 },
                            useful: 0,
                        };
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    // Decay usefulness so future allocations can proceed.
                    for t in start..HISTORY_LENGTHS.len() {
                        let idx = self.tagged_index(pc, t);
                        let e = &mut self.tagged[t][idx];
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
        }
        self.history = (self.history << 1) | u128::from(taken);
    }

    /// Folds a taken control-flow transfer into the history (calls, jumps —
    /// keeps tagged indices path-dependent like real frontends).
    pub fn note_taken_transfer(&mut self, _pc: u64) {
        self.history = (self.history << 1) | 1;
    }
}

fn bump2(c: u8, up: bool) -> u8 {
    if up {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

fn bump3(c: u8, up: bool) -> u8 {
    if up {
        (c + 1).min(7)
    } else {
        c.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_support::SimRng;

    fn accuracy(stream: impl Iterator<Item = (u64, bool)>) -> f64 {
        let mut tage = Tage::new();
        let mut correct = 0u64;
        let mut total = 0u64;
        for (pc, taken) in stream {
            let p = tage.predict(pc);
            if p.taken == taken {
                correct += 1;
            }
            tage.update(pc, taken, p);
            total += 1;
        }
        correct as f64 / total as f64
    }

    #[test]
    fn learns_strongly_biased_branches() {
        let acc = accuracy((0..20_000u64).map(|i| (0x100 + (i % 16) * 8, true)));
        assert!(acc > 0.99, "biased accuracy {acc}");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // Bimodal alone is ~50% on strict alternation; tagged tables learn it.
        let acc = accuracy((0..20_000u64).map(|i| (0x400, i % 2 == 0)));
        assert!(acc > 0.95, "alternating accuracy {acc}");
    }

    #[test]
    fn learns_short_loop_trip_counts() {
        // taken x7, not-taken x1 repeating: history-correlated.
        let acc = accuracy((0..40_000u64).map(|i| (0x800, i % 8 != 7)));
        assert!(acc > 0.93, "loop accuracy {acc}");
    }

    #[test]
    fn random_branches_near_chance() {
        let mut rng = SimRng::seed_from_u64(9);
        let stream: Vec<(u64, bool)> = (0..20_000).map(|_| (0xc00, rng.gen::<bool>())).collect();
        let acc = accuracy(stream.into_iter());
        assert!((0.4..0.6).contains(&acc), "random accuracy {acc}");
    }

    #[test]
    fn mixed_workload_accuracy_is_high() {
        // A mix resembling our synthetic traces: 70% strongly biased, 20%
        // loops, 10% random.
        let mut rng = SimRng::seed_from_u64(11);
        let mut stream = Vec::new();
        for i in 0..60_000u64 {
            let class = i % 10;
            if class < 7 {
                let pc = 0x1000 + (i % 64) * 4;
                stream.push((pc, pc % 8 < 6));
            } else if class < 9 {
                stream.push((0x9000 + (i % 4) * 4, i % 6 != 5));
            } else {
                stream.push((0xf000, rng.gen::<bool>()));
            }
        }
        let acc = accuracy(stream.into_iter());
        assert!(acc > 0.9, "mixed accuracy {acc}");
    }
}
