//! Kill-restart crash recovery for the hint server.
//!
//! The contract under test (DESIGN.md §12): an acknowledged ingest is
//! durable, a retried ingest is idempotent, and after any crash the
//! recovered, fully-drained hint tables are **byte-identical** to an
//! uninterrupted run over the same batches.
//!
//! Two crash modes:
//! * `--fault-plan exit-after=N` — the server kills itself (exit 86) the
//!   instant the N-th batch hits the journal, *before* the client is
//!   acked: the worst spot, a journaled-but-unacknowledged batch. The
//!   client's bounded retry resends it after restart and must be answered
//!   `deduped`.
//! * a real SIGKILL between acknowledged operations.
//!
//! Run uninterrupted over the same sequence, dump both stores, compare
//! the canonical table bytes.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use btb_model::BtbConfig;
use btb_trace::{BranchKind, BranchRecord, Trace};
use hintd::{HintClient, HintStore, RetryPolicy, StoreConfig};
use sim_support::fault::CRASH_EXIT_CODE;
use sim_support::NetFaultPlan;

const APPS: [&str; 2] = ["alpha", "beta"];

fn batch(id: u64) -> Trace {
    // Distinct, deterministic content per id: a hot loop plus an id-keyed
    // cold tail, so every batch moves the final table.
    let mut records = Vec::new();
    for i in 0..40u64 {
        let pc = 0x40 + (id * 8) % 64;
        records.push(BranchRecord::taken(
            pc,
            pc + 0x100,
            BranchKind::UncondDirect,
            1,
        ));
        records.push(BranchRecord::taken(
            0x1000 + id * 0x80 + i * 4,
            0x2000,
            BranchKind::UncondDirect,
            1,
        ));
    }
    Trace::from_records(format!("batch{id}"), records)
}

fn app_of(id: u64) -> &'static str {
    APPS[(id % 2) as usize]
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("hintd-crash-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Kills the child on drop so a panicking test never leaks a server.
struct ServerProc {
    child: Child,
    addr: String,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_hintd(data_dir: &Path, addr_file: &Path, fault_plan: Option<&str>) -> ServerProc {
    let _ = std::fs::remove_file(addr_file);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hintd"));
    cmd.arg("--data-dir")
        .arg(data_dir)
        .arg("--addr-file")
        .arg(addr_file)
        .args(["--btb-entries", "16", "--btb-ways", "4"])
        .args(["--read-timeout-ms", "20", "--idle-ticks", "20"])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(plan) = fault_plan {
        cmd.args(["--fault-plan", plan]);
    }
    let child = cmd.spawn().expect("spawn hintd");
    // write_atomic guarantees the file appears complete or not at all.
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        match std::fs::read_to_string(addr_file) {
            Ok(text) if !text.trim().is_empty() => break text.trim().to_owned(),
            _ => {
                assert!(
                    Instant::now() < deadline,
                    "hintd never published its address"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    ServerProc { child, addr }
}

fn fast_client(addr: &str) -> HintClient {
    let mut client = HintClient::with_faults(
        addr.to_string(),
        RetryPolicy {
            max_retries: 3,
            base_delay_ms: 1,
            max_delay_ms: 8,
        },
        NetFaultPlan::default(),
        0,
    );
    client.set_read_timeout_ms(1_000);
    client
}

/// Fully drains the server over the wire and returns each app's canonical
/// table bytes, sorted by app name.
fn dump_over_wire(client: &mut HintClient) -> Vec<(String, Vec<u8>)> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = client.health().expect("drain health");
        if health.backlog == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "backlog refuses to drain");
    }
    let mut out: Vec<(String, Vec<u8>)> = APPS
        .iter()
        .map(|app| {
            let reply = client.query(app).expect("dump query");
            assert!(!reply.stale, "drained server must serve fresh");
            (app.to_string(), reply.table.encode_bytes())
        })
        .collect();
    out.sort();
    out
}

/// The uninterrupted reference: the same batches through an in-process
/// store with the same geometry. `HintStore::dump_tables` returns the
/// same canonical bytes the wire dump uses.
fn reference_tables(ids: std::ops::Range<u64>) -> Vec<(String, Vec<u8>)> {
    let store = HintStore::open(StoreConfig {
        btb: BtbConfig::new(16, 4),
        ..StoreConfig::default()
    })
    .unwrap();
    for id in ids {
        let response = store.ingest_response(app_of(id), id, batch(id));
        assert!(
            matches!(response, hintd::Response::Ingest(_)),
            "{response:?}"
        );
    }
    store.dump_tables()
}

#[test]
fn exit_after_crash_recovers_byte_identical_tables() {
    let dir = scratch("exit-after");
    let data = dir.join("data");
    let addr_file = dir.join("addr.txt");

    // The 3rd journal append kills the server before the ack goes out.
    let mut server = spawn_hintd(&data, &addr_file, Some("exit-after=3"));
    let mut client = fast_client(&server.addr);

    let mut acked = Vec::new();
    let mut id = 0u64;
    while id < 6 {
        match client.ingest(app_of(id), id, &batch(id)) {
            Ok(ack) => {
                acked.push((id, ack.deduped));
                id += 1;
            }
            Err(err) => {
                // The planned crash. Prove it was the planned exit code,
                // then restart over the same data dir and resend the same
                // batch id.
                assert_eq!(err.class, sim_support::FaultClass::Transient);
                let status = server.child.wait().expect("wait crashed hintd");
                assert_eq!(
                    status.code(),
                    Some(CRASH_EXIT_CODE),
                    "server must die by the fault plan, not by accident"
                );
                server = spawn_hintd(&data, &addr_file, None);
                client = fast_client(&server.addr);
                let ack = client
                    .ingest(app_of(id), id, &batch(id))
                    .expect("resend after restart");
                assert!(
                    ack.deduped,
                    "the batch was journaled before the crash; the resend \
                     must dedupe, not double-absorb"
                );
                acked.push((id, true));
                id += 1;
            }
        }
    }
    assert_eq!(acked.len(), 6);
    assert_eq!(
        acked.iter().filter(|(_, deduped)| *deduped).count(),
        1,
        "exactly the crash-straddling batch is deduplicated"
    );

    let health = client.health().expect("final health");
    assert_eq!(health.accepted, 6, "zero lost acknowledged batches");

    assert_eq!(
        dump_over_wire(&mut client),
        reference_tables(0..6),
        "recovered tables must be byte-identical to the uninterrupted run"
    );
}

#[test]
fn sigkill_between_acks_recovers_byte_identical_tables() {
    let dir = scratch("sigkill");
    let data = dir.join("data");
    let addr_file = dir.join("addr.txt");

    let mut server = spawn_hintd(&data, &addr_file, None);
    let mut client = fast_client(&server.addr);
    for id in 0..3u64 {
        let ack = client.ingest(app_of(id), id, &batch(id)).unwrap();
        assert!(!ack.deduped);
    }

    // A real SIGKILL: no atexit hooks, no flushes, nothing graceful.
    server.child.kill().expect("SIGKILL hintd");
    let _ = server.child.wait();

    server = spawn_hintd(&data, &addr_file, None);
    client = fast_client(&server.addr);
    for id in 3..6u64 {
        let ack = client.ingest(app_of(id), id, &batch(id)).unwrap();
        assert!(!ack.deduped);
    }

    let health = client.health().expect("final health");
    assert_eq!(health.accepted, 6, "all acknowledged batches survived");
    assert_eq!(
        dump_over_wire(&mut client),
        reference_tables(0..6),
        "post-SIGKILL tables must be byte-identical to the uninterrupted run"
    );
}
