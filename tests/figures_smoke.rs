//! Smoke-runs every figure harness at a tiny scale and checks structural
//! and directional invariants of the produced data.

use thermometer_bench::{figure_by_id, FigureResult, Scale, FIGURE_IDS};

fn run(id: &str, scale: &Scale) -> Vec<FigureResult> {
    figure_by_id(id, scale).unwrap_or_else(|| panic!("unknown figure {id}"))
}

#[test]
fn every_figure_produces_rows_and_columns() {
    let scale = Scale::smoke();
    for id in FIGURE_IDS {
        for fig in run(id, &scale) {
            assert!(!fig.rows.is_empty(), "{id}: no rows");
            assert!(!fig.columns.is_empty(), "{id}: no columns");
            for row in &fig.rows {
                assert_eq!(
                    row.values.len(),
                    fig.columns.len(),
                    "{id}: row {} has {} values for {} columns",
                    row.label,
                    row.values.len(),
                    fig.columns.len()
                );
                for v in &row.values {
                    assert!(v.is_finite(), "{id}: non-finite value in {}", row.label);
                }
            }
        }
    }
}

#[test]
fn fig02_perfect_btb_dominates_on_average() {
    let scale = Scale::smoke();
    let fig = run("fig02", &scale).remove(0);
    let avg = fig.rows.last().expect("avg row");
    assert_eq!(avg.label, "Avg");
    let (btb, _bp, _icache) = (avg.values[0], avg.values[1], avg.values[2]);
    assert!(btb >= 0.0, "perfect BTB can never slow down: {btb}");
}

#[test]
fn fig07_cdf_is_monotone_and_ends_at_100() {
    let scale = Scale::smoke();
    let fig = run("fig07", &scale).remove(0);
    for col in 0..fig.columns.len() {
        let series: Vec<f64> = fig.rows.iter().map(|r| r.values[col]).collect();
        for w in series.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "{}: CDF not monotone: {w:?}",
                fig.columns[col]
            );
        }
        let last = *series.last().expect("non-empty");
        assert!(
            (last - 100.0).abs() < 1e-6,
            "{}: CDF ends at {last}",
            fig.columns[col]
        );
    }
}

#[test]
fn fig06_heat_curve_is_decreasing() {
    let scale = Scale::smoke();
    let fig = run("fig06", &scale).remove(0);
    for col in 0..fig.columns.len() {
        let series: Vec<f64> = fig.rows.iter().map(|r| r.values[col]).collect();
        for w in series.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "{}: heat curve increased: {w:?}",
                fig.columns[col]
            );
        }
    }
}

#[test]
fn fig09_cold_bypasses_more_than_hot() {
    let scale = Scale::smoke();
    let fig = run("fig09", &scale).remove(0);
    let avg = fig.rows.last().expect("avg row");
    let (cold, hot) = (avg.values[0], avg.values[2]);
    assert!(
        cold > hot,
        "cold bypass {cold} should exceed hot bypass {hot}"
    );
}

#[test]
fn fig05_transient_variance_exceeds_holistic() {
    let scale = Scale::smoke();
    let fig = run("fig05", &scale).remove(0);
    let avg = fig.rows.last().expect("avg row");
    assert!(
        avg.values[0] > avg.values[1],
        "transient {} must exceed holistic {}",
        avg.values[0],
        avg.values[1]
    );
}

#[test]
fn fig15_coverage_is_a_percentage() {
    let scale = Scale::smoke();
    let fig = run("fig15", &scale).remove(0);
    for row in &fig.rows {
        assert!(
            (0.0..=100.0).contains(&row.values[0]),
            "{}: {}",
            row.label,
            row.values[0]
        );
    }
}

#[test]
fn fig16_accuracy_orders_transient_holistic_thermometer() {
    let scale = Scale::smoke();
    let fig = run("fig16", &scale).remove(0);
    let avg = fig.rows.last().expect("avg row");
    let (_transient, holistic, therm) = (avg.values[0], avg.values[1], avg.values[2]);
    // Thermometer refines holistic with the transient tie-break; on average
    // it must not be worse than holistic alone (paper: 68.2% vs 63.7%).
    assert!(
        therm >= holistic - 5.0,
        "thermometer accuracy {therm} collapsed below holistic {holistic}"
    );
}

#[test]
fn markdown_report_renders_for_all_figures() {
    let scale = Scale::smoke();
    let fig = run("fig01", &scale).remove(0);
    let md = fig.to_markdown();
    assert!(md.contains("### fig01"));
    assert!(md.contains("| workload |"));
}
