//! Cell-level fault tolerance: with isolation enabled, an injected panic in
//! one grid cell must not take down its siblings — the poisoned cell is
//! quarantined with a reason, transient faults retry to an identical result,
//! and every surviving cell's numbers are byte-identical to a fault-free
//! run. Fault-plan state is process-global, so (like `grid_parallel`) every
//! test serializes on one mutex and restores defaults before returning.

use std::sync::Mutex; // simlint: allow(D03) -- serializes tests that flip process-global config

use sim_support::{fault, pool, FaultPlan};
use thermometer_bench::{figure_by_id, grid, FaultPolicy, Scale};

/// Serializes the tests in this binary: they install process-global fault
/// plans and policies.
// simlint: allow(D03) -- test-only serialization lock, not simulator state
static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// Restores the default (fault-free, propagate-panics) configuration even
/// if an assertion fails.
struct ResetFaults;
impl Drop for ResetFaults {
    fn drop(&mut self) {
        fault::clear();
        grid::set_fault_policy(FaultPolicy::default());
        pool::set_threads(0);
        grid::reset_stats();
        grid::take_quarantined();
    }
}

fn fig01_rows(scale: &Scale) -> Vec<(String, Vec<u64>)> {
    let figs = figure_by_id("fig01", scale).expect("known figure id");
    figs[0]
        .rows
        .iter()
        .map(|r| {
            // Bit-exact comparison: f64 equality would paper over NaN and
            // signed-zero drift.
            (
                r.label.clone(),
                r.values.iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect()
}

#[test]
fn poison_quarantines_one_cell_and_siblings_are_bit_identical() {
    let _exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetFaults;
    fault::silence_injected_panics();
    let scale = Scale::smoke();

    pool::set_threads(2);
    let reference = fig01_rows(&scale);
    assert_eq!(reference.len(), scale.apps.len() + 1, "apps + Avg row");

    let victim = scale.apps[1].name.clone();
    fault::install(FaultPlan::parse("seed=1,panic=fig01:1:poison").expect("valid plan"));
    grid::set_fault_policy(FaultPolicy {
        isolate: true,
        max_retries: 1,
    });
    grid::take_quarantined();
    let survived = fig01_rows(&scale);

    // Exactly the victim cell is quarantined, with an attributable reason.
    let quarantined = grid::take_quarantined();
    assert_eq!(quarantined.len(), 1, "{quarantined:?}");
    let q = &quarantined[0];
    assert_eq!(
        (q.figure.as_str(), q.index, &q.label),
        ("fig01", 1, &victim)
    );
    assert_eq!(q.class.name(), "poison");
    assert!(
        q.reason.contains("fig01[1]"),
        "reason must locate the cell: {}",
        q.reason
    );

    // Siblings survive, in order, bit-identical to the fault-free run.
    // (The Avg row legitimately changes — it now averages fewer rows.)
    let expect: Vec<_> = reference
        .iter()
        .filter(|(label, _)| *label != victim && label != "Avg")
        .cloned()
        .collect();
    let got: Vec<_> = survived
        .iter()
        .filter(|(label, _)| label != "Avg")
        .cloned()
        .collect();
    assert_eq!(got, expect, "surviving cells drifted under fault injection");
}

#[test]
fn transient_fault_retries_to_a_byte_identical_figure() {
    let _exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetFaults;
    fault::silence_injected_panics();
    let scale = Scale::smoke();

    pool::set_threads(2);
    let reference = figure_by_id("fig01", &scale).expect("known figure id")[0].to_markdown();

    // The transient fires on attempt 0 only; one retry must fully recover.
    fault::install(FaultPlan::parse("seed=1,panic=fig01:0:transient").expect("valid plan"));
    grid::set_fault_policy(FaultPolicy {
        isolate: true,
        max_retries: 2,
    });
    grid::reset_stats();
    grid::take_quarantined();
    let retried = figure_by_id("fig01", &scale).expect("known figure id")[0].to_markdown();

    assert_eq!(
        retried, reference,
        "a retried transient must not perturb the figure"
    );
    assert!(grid::take_quarantined().is_empty(), "nothing to quarantine");
    let stats = grid::take_stats();
    let cell = stats
        .iter()
        .find(|s| s.figure == "fig01" && s.index == 0)
        .expect("cell 0 recorded");
    assert_eq!(cell.attempts, 2, "one injected transient, one retry");
    assert!(
        stats
            .iter()
            .filter(|s| s.figure == "fig01" && s.index != 0)
            .all(|s| s.attempts == 1),
        "siblings must not retry"
    );
}

/// ISSUE 10 satellite regression: a torn (truncated, non-newline-
/// terminated) final journal line — the on-disk state a power loss or
/// `kill -9` mid-`write(2)` leaves behind, possibly with invalid UTF-8 —
/// is treated as **uncommitted**, never as a replay error, and the
/// journal's owner truncates it so the next append lands cleanly.
#[test]
fn torn_journal_tail_is_uncommitted_not_an_error() {
    use std::io::Write as _;
    let _exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join("fault-tolerance-tests");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("torn-tail.jsonl");
    let _ = std::fs::remove_file(&path);

    let journal = thermometer_bench::Journal::new(&path);
    journal.start("fp-torn").expect("start");
    journal
        .append_figure("fig01", "display one\n", "| a |\n")
        .expect("commit fig01");
    // Tear the tail mid-record, with an invalid-UTF-8 byte for good
    // measure — exactly what ProcFaultKind::TornJournal injects.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("reopen journal");
    f.write_all(b"{\"kind\":\"figure\",\"figure\":\"t\xFForn")
        .expect("tear tail");
    drop(f);

    // Replay: the torn bytes are invisible, fig01 survives.
    let loaded = journal
        .load("fp-torn")
        .expect("torn tail must not error")
        .expect("fingerprint still matches");
    assert_eq!(loaded.figures.len(), 1, "committed figure lost");
    assert_eq!(loaded.figures[0].id, "fig01");

    // Load repaired the tail (owner semantics): the next append starts a
    // fresh line and both commits replay.
    journal
        .append_figure("fig02", "display two\n", "| b |\n")
        .expect("append after repair");
    let reloaded = journal
        .load("fp-torn")
        .expect("reload")
        .expect("fingerprint matches");
    assert_eq!(
        reloaded
            .figures
            .iter()
            .map(|f| f.id.as_str())
            .collect::<Vec<_>>(),
        vec!["fig01", "fig02"],
        "append after torn tail must not fuse records"
    );
}

#[test]
fn quarantine_outcome_is_thread_count_invariant() {
    let _exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetFaults;
    fault::silence_injected_panics();
    let scale = Scale::smoke();

    let run = |threads: usize| {
        pool::set_threads(threads);
        fault::install(FaultPlan::parse("seed=7,panic=fig01:2:poison").expect("valid plan"));
        grid::set_fault_policy(FaultPolicy {
            isolate: true,
            max_retries: 1,
        });
        grid::take_quarantined();
        let markdown = figure_by_id("fig01", &scale).expect("known figure id")[0].to_markdown();
        let quarantined = grid::take_quarantined();
        fault::clear();
        (markdown, quarantined.len())
    };

    let (serial, serial_q) = run(1);
    let (parallel, parallel_q) = run(4);
    assert_eq!(serial_q, 1);
    assert_eq!(parallel_q, 1);
    assert_eq!(
        serial, parallel,
        "quarantine decisions must not depend on worker count"
    );
}
