//! Policy-matrix invariants: every replacement policy, driven by real
//! workload traces, must satisfy the BTB accounting identities, and
//! Belady's OPT must dominate them all.

use btb_model::policies::{
    BeladyOpt, Ghrp, GhrpConfig, Hawkeye, HawkeyeConfig, Lru, Random, Srrip,
};
use btb_model::{AccessContext, Btb, BtbConfig, BtbStats, ReplacementPolicy};
use btb_trace::{BranchKind, BranchRecord, NextUseOracle, Trace};
use btb_workloads::{AppSpec, InputConfig};
use sim_support::forall;

fn workload(name: &str) -> Trace {
    AppSpec::by_name(name)
        .expect("built-in app")
        .generate(InputConfig::input(0), 120_000)
}

fn drive<P: ReplacementPolicy>(
    trace: &Trace,
    policy: P,
    config: BtbConfig,
    oracle: bool,
) -> BtbStats {
    let oracle = oracle.then(|| NextUseOracle::build(trace));
    let mut btb = Btb::new(config, policy);
    for (i, r) in trace.taken().enumerate() {
        let ctx = AccessContext {
            pc: r.pc,
            target: r.target,
            kind: r.kind,
            hint: 0,
            next_use: oracle.as_ref().map_or(u64::MAX, |o| o.next_use(i)),
            access_index: i as u64,
        };
        btb.access(&ctx);
    }
    btb.stats().clone()
}

#[test]
fn accounting_identities_hold_for_every_policy() {
    let trace = workload("python");
    let config = BtbConfig::new(2048, 4);
    let stats: Vec<(&str, BtbStats)> = vec![
        ("LRU", drive(&trace, Lru::new(), config, false)),
        ("Random", drive(&trace, Random::with_seed(3), config, false)),
        ("SRRIP", drive(&trace, Srrip::new(), config, false)),
        (
            "GHRP",
            drive(&trace, Ghrp::new(GhrpConfig::default()), config, false),
        ),
        (
            "Hawkeye",
            drive(
                &trace,
                Hawkeye::new(HawkeyeConfig::default()),
                config,
                false,
            ),
        ),
        ("OPT", drive(&trace, BeladyOpt::new(), config, true)),
    ];
    let accesses = stats[0].1.accesses;
    for (name, s) in &stats {
        assert_eq!(s.accesses, accesses, "{name}: access count differs");
        assert_eq!(
            s.hits + s.misses,
            s.accesses,
            "{name}: hits+misses != accesses"
        );
        assert_eq!(
            s.fills + s.evictions + s.bypasses,
            s.misses,
            "{name}: miss breakdown"
        );
        assert_eq!(
            s.fills, stats[0].1.fills,
            "{name}: cold fills are policy-independent"
        );
    }
}

#[test]
fn opt_dominates_every_online_policy_on_real_workloads() {
    for name in ["kafka", "python", "finagle-http"] {
        let trace = workload(name);
        let config = BtbConfig::new(2048, 4);
        let opt = drive(&trace, BeladyOpt::new(), config, true);
        for (label, stats) in [
            ("LRU", drive(&trace, Lru::new(), config, false)),
            ("Random", drive(&trace, Random::with_seed(1), config, false)),
            ("SRRIP", drive(&trace, Srrip::new(), config, false)),
            (
                "GHRP",
                drive(&trace, Ghrp::new(GhrpConfig::default()), config, false),
            ),
            (
                "Hawkeye",
                drive(
                    &trace,
                    Hawkeye::new(HawkeyeConfig::default()),
                    config,
                    false,
                ),
            ),
        ] {
            assert!(
                opt.hits >= stats.hits,
                "{name}: OPT ({}) lost to {label} ({})",
                opt.hits,
                stats.hits
            );
        }
    }
}

#[test]
fn only_opt_style_policies_bypass() {
    let trace = workload("kafka");
    let config = BtbConfig::new(1024, 4);
    for (label, stats) in [
        ("LRU", drive(&trace, Lru::new(), config, false)),
        ("SRRIP", drive(&trace, Srrip::new(), config, false)),
        (
            "GHRP",
            drive(&trace, Ghrp::new(GhrpConfig::default()), config, false),
        ),
        (
            "Hawkeye",
            drive(
                &trace,
                Hawkeye::new(HawkeyeConfig::default()),
                config,
                false,
            ),
        ),
    ] {
        assert_eq!(stats.bypasses, 0, "{label} must never bypass");
    }
    let opt = drive(&trace, BeladyOpt::new(), config, true);
    assert!(
        opt.bypasses > 0,
        "OPT should bypass cold streams under pressure"
    );
}

#[test]
fn capacity_monotonicity_for_opt() {
    // More capacity can never hurt the optimal policy.
    let trace = workload("python");
    let mut prev_hits = 0;
    for entries in [512usize, 1024, 2048, 4096] {
        let stats = drive(&trace, BeladyOpt::new(), BtbConfig::new(entries, 4), true);
        assert!(
            stats.hits >= prev_hits,
            "OPT hits decreased from {prev_hits} to {} at {entries} entries",
            stats.hits
        );
        prev_hits = stats.hits;
    }
}

/// On arbitrary access streams and geometries (including remainder sets),
/// no online policy beats OPT, and no set ever holds more entries than its
/// associativity allows — checked after every single access.
#[test]
fn prop_no_policy_beats_opt_and_sets_never_overflow() {
    fn synthetic(pcs: &[u64]) -> Trace {
        let mut t = Trace::new("policy-matrix-prop");
        for &pc in pcs {
            t.push(BranchRecord::taken(
                pc << 2,
                0x1,
                BranchKind::UncondDirect,
                0,
            ));
        }
        t
    }

    fn checked_hits<P: ReplacementPolicy>(trace: &Trace, policy: P, config: BtbConfig) -> u64 {
        let stats = {
            let oracle = NextUseOracle::build(trace);
            let mut btb = Btb::new(config, policy);
            for (i, r) in trace.taken().enumerate() {
                let ctx = AccessContext {
                    pc: r.pc,
                    target: r.target,
                    kind: r.kind,
                    hint: 0,
                    next_use: oracle.next_use(i),
                    access_index: i as u64,
                };
                btb.access(&ctx);
                for s in 0..btb.geometry().sets() {
                    let occ = btb.set_occupancy(s);
                    let cap = btb.geometry().ways_of(s);
                    assert!(occ <= cap, "set {s} holds {occ} entries, capacity {cap}");
                }
            }
            assert!(btb.occupancy() <= config.entries());
            btb.stats().clone()
        };
        assert_eq!(stats.hits + stats.misses, stats.accesses);
        stats.hits
    }

    forall!(cases: 32, gen: |rng| {
        let len = rng.gen_range(1usize..400);
        let pcs: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..48)).collect();
        // Entries not divisible by ways exercises the remainder set.
        let ways = rng.gen_range(1usize..5);
        let entries = rng.gen_range(ways..=4 * ways + 3);
        (pcs, entries, ways)
    }, prop: |(pcs, entries, ways)| {
        let trace = synthetic(pcs);
        let config = BtbConfig::new(*entries, *ways);
        let opt = checked_hits(&trace, BeladyOpt::new(), config);
        for (label, hits) in [
            ("LRU", checked_hits(&trace, Lru::new(), config)),
            ("Random", checked_hits(&trace, Random::with_seed(11), config)),
            ("SRRIP", checked_hits(&trace, Srrip::new(), config)),
            ("GHRP", checked_hits(&trace, Ghrp::new(GhrpConfig::default()), config)),
            ("Hawkeye", checked_hits(&trace, Hawkeye::new(HawkeyeConfig::default()), config)),
        ] {
            assert!(opt >= hits, "OPT ({opt} hits) lost to {label} ({hits} hits)");
        }
    });
}

#[test]
fn remainder_set_geometry_runs_every_policy() {
    // The 7979-entry geometry has a 3-way remainder set; every policy must
    // handle the shorter row.
    let trace = workload("finagle-http");
    let config = BtbConfig::iso_storage_7979();
    for stats in [
        drive(&trace, Lru::new(), config, false),
        drive(&trace, Srrip::new(), config, false),
        drive(&trace, Ghrp::new(GhrpConfig::default()), config, false),
        drive(
            &trace,
            Hawkeye::new(HawkeyeConfig::default()),
            config,
            false,
        ),
        drive(&trace, BeladyOpt::new(), config, true),
    ] {
        assert!(stats.hits > 0);
        assert_eq!(stats.hits + stats.misses, stats.accesses);
    }
}
