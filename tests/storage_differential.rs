//! Storage differential battery: the flat SoA [`Btb`] must be
//! behaviour-identical to the legacy per-entry [`ReferenceBtb`] it
//! replaced, for every policy in the zoo, on adversarial random streams.
//!
//! "Identical" is strict: the same access outcomes in the same order, the
//! same statistics (hits, misses, fills, evictions, bypasses, prefetch
//! counters), and the same final per-set contents in way order. Any SoA
//! shortcut that changes scan order, tie-breaks, or the prefix-valid
//! invariant shows up here with a shrunk witness stream.

use btb_model::policies::{
    BeladyOpt, Drrip, Fifo, Ghrp, GhrpConfig, Hawkeye, HawkeyeConfig, Lru, PseudoLru, Random, Ship,
    Srrip, Trrip,
};
use btb_model::reference::ReferenceBtb;
use btb_model::{AccessContext, Btb, BtbConfig, ReplacementPolicy};
use btb_trace::BranchKind;
use sim_support::{forall, SimRng};
use thermometer::{HolisticOnly, PolicyKind, ThermometerNoBypass, ThermometerPolicy};

/// One step of a differential stream.
#[derive(Clone, Debug)]
enum Op {
    /// A demand access with a fully populated context.
    Access(AccessContext),
    /// A prefetcher-initiated hinted fill.
    Prefetch { pc: u64, target: u64, hint: u8 },
    /// An invalidation (the multilevel hierarchies' back-invalidate /
    /// move-up path) — exercises swap-remove metadata relocation.
    Invalidate { pc: u64 },
}

/// A small, collision-heavy op stream: few sets, PCs clustered so sets
/// fill, conflict, and (for hinted policies) bypass.
fn arb_ops(rng: &mut SimRng, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let pc = rng.gen_range(0u64..48) * 4;
            let kind =
                BranchKind::from_code(rng.gen_range(0u32..6) as u8).expect("codes 0..6 are valid");
            let roll = rng.gen_range(0u32..16);
            if roll < 2 {
                Op::Prefetch {
                    pc,
                    target: pc + rng.gen_range(1u64..0x100),
                    hint: rng.gen_range(0u32..4) as u8,
                }
            } else if roll == 2 {
                Op::Invalidate { pc }
            } else {
                Op::Access(AccessContext {
                    pc,
                    target: pc + rng.gen_range(1u64..0x100),
                    kind,
                    hint: rng.gen_range(0u32..4) as u8,
                    next_use: rng.gen_range(0u64..200),
                    access_index: 0, // both BTBs stamp their own
                })
            }
        })
        .collect()
}

/// Drives the same ops through both implementations and requires identical
/// observable behaviour at every step and identical final state.
fn differential<P: ReplacementPolicy>(label: &str, make: impl Fn() -> P, ops: &[Op]) {
    // 4 sets x 4 ways plus a remainder-set geometry in the mix below.
    for config in [BtbConfig::new(16, 4), BtbConfig::new(15, 4)] {
        let mut soa = Btb::new(config, make());
        let mut reference = ReferenceBtb::new(config, make());
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Access(ctx) => {
                    let a = soa.access(ctx);
                    let b = reference.access(ctx);
                    assert_eq!(a, b, "{label}: outcome diverged at op {i} ({ctx:?})");
                }
                Op::Prefetch { pc, target, hint } => {
                    let a = soa.prefetch_fill_hinted(*pc, *target, BranchKind::UncondDirect, *hint);
                    let b = reference.prefetch_fill_hinted(
                        *pc,
                        *target,
                        BranchKind::UncondDirect,
                        *hint,
                    );
                    assert_eq!(a, b, "{label}: prefetch diverged at op {i} (pc {pc:#x})");
                }
                Op::Invalidate { pc } => {
                    let a = soa.invalidate(*pc);
                    let b = reference.invalidate(*pc);
                    assert_eq!(a, b, "{label}: invalidate diverged at op {i} (pc {pc:#x})");
                }
            }
        }
        assert_eq!(soa.stats(), reference.stats(), "{label}: stats diverged");
        assert_eq!(
            soa.occupancy(),
            reference.occupancy(),
            "{label}: occupancy diverged"
        );
        assert_eq!(
            soa.snapshot(),
            reference.snapshot(),
            "{label}: final set contents diverged"
        );
    }
}

/// Every policy in the zoo, exercised over one shrinkable random stream.
fn zoo(ops: &[Op]) {
    differential("LRU", Lru::new, ops);
    differential("FIFO", Fifo::new, ops);
    differential("PLRU", PseudoLru::new, ops);
    differential("Random", || Random::with_seed(0x5eed), ops);
    differential("SRRIP", Srrip::new, ops);
    differential("DRRIP", Drrip::new, ops);
    differential("DRRIP-pinned", Drrip::pinned_srrip, ops);
    differential("TRRIP", Trrip::new, ops);
    differential("TRRIP-pinned", Trrip::pinned_srrip, ops);
    differential("SHiP", Ship::new, ops);
    differential("GHRP", || Ghrp::new(GhrpConfig::default()), ops);
    differential("Hawkeye", || Hawkeye::new(HawkeyeConfig::default()), ops);
    differential("OPT", BeladyOpt::new, ops);
    differential("Thermometer", ThermometerPolicy::new, ops);
    differential("Therm-NoBypass", ThermometerNoBypass::new, ops);
    differential("Holistic", HolisticOnly::new, ops);
    differential(
        "PolicyKind",
        || PolicyKind::by_name("srrip").expect("srrip is known"),
        ops,
    );
    differential(
        "PolicyKind-trrip",
        || PolicyKind::by_name("trrip").expect("trrip is known"),
        ops,
    );
}

#[test]
fn soa_storage_matches_reference_for_the_policy_zoo() {
    forall!(cases: 24, gen: |rng| {
        let len = rng.gen_range(32usize..400);
        arb_ops(rng, len)
    }, shrink: sim_support::forall::shrink_halves, prop: |ops| {
        zoo(ops);
    });
}

#[test]
fn soa_storage_matches_reference_on_long_thrashing_stream() {
    // One long deterministic stream with heavy conflict pressure, beyond
    // what the shrinkable cases cover.
    let mut rng = SimRng::seed_from_u64(0xb7b);
    let ops = arb_ops(&mut rng, 20_000);
    zoo(&ops);
}

#[test]
fn probe_and_clear_match_reference() {
    let mut rng = SimRng::seed_from_u64(0xc1ea);
    let ops = arb_ops(&mut rng, 500);
    let config = BtbConfig::new(15, 4);
    let mut soa = Btb::new(config, Lru::new());
    let mut reference = ReferenceBtb::new(config, Lru::new());
    for op in &ops {
        if let Op::Access(ctx) = op {
            soa.access(ctx);
            reference.access(ctx);
        }
    }
    for pc in (0u64..64).map(|p| p * 4) {
        assert_eq!(
            soa.probe(pc),
            reference.probe(pc),
            "probe({pc:#x}) diverged"
        );
    }
    soa.clear();
    assert_eq!(soa.occupancy(), 0);
    assert_eq!(soa.stats().accesses, 0);
    for pc in (0u64..64).map(|p| p * 4) {
        assert!(soa.probe(pc).is_none(), "clear left {pc:#x} resident");
    }
}
