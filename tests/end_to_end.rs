//! End-to-end integration: workload generation → profiling → hint
//! injection → frontend simulation, across crates.

use btb_model::BtbConfig;
use btb_trace::TraceStats;
use btb_workloads::{AppSpec, InputConfig};
use thermometer::pipeline::{Pipeline, PipelineConfig};
use thermometer::{HintTable, TemperatureConfig};
use uarch_sim::FrontendConfig;

const LEN: usize = 250_000;

fn pipeline() -> Pipeline {
    Pipeline::new(PipelineConfig::default())
}

fn small_pipeline() -> Pipeline {
    // A 2K-entry BTB against kafka's footprint reproduces the paper's
    // capacity-pressure regime at unit-test trace lengths.
    Pipeline::new(PipelineConfig {
        frontend: FrontendConfig {
            btb: BtbConfig::new(2048, 4),
            ..FrontendConfig::table1()
        },
        temperature: TemperatureConfig::paper_default(),
    })
}

#[test]
fn thermometer_beats_lru_and_respects_opt_floor() {
    // Same-input hints: the cleanest statement of Algorithm 1's benefit.
    // (Cross-input transfer is probed separately with a tolerance — at
    // unit-test trace lengths the profile coverage is far below the
    // paper's, so cross-input wins are only reliably visible at the
    // figure-harness scale.)
    let spec = AppSpec::by_name("kafka").unwrap();
    let test = spec.generate(InputConfig::input(1), LEN);
    let p = small_pipeline();
    let hints = p.profile_to_hints(&test);

    let lru = p.run_lru(&test);
    let therm = p.run_thermometer(&test, &hints);
    let opt = p.run_opt(&test);

    assert!(
        therm.btb.misses < lru.btb.misses,
        "thermometer {} >= lru {}",
        therm.btb.misses,
        lru.btb.misses
    );
    assert!(
        opt.btb.misses < therm.btb.misses,
        "OPT must remain the floor"
    );
    assert!(therm.ipc() > lru.ipc());
    assert!(opt.ipc() > therm.ipc());
}

#[test]
fn cross_input_hints_do_not_catastrophically_regress() {
    let spec = AppSpec::by_name("kafka").unwrap();
    let train = spec.generate(InputConfig::input(0), LEN);
    let test = spec.generate(InputConfig::input(1), LEN);
    let p = small_pipeline();
    let hints = p.profile_to_hints(&train);
    let lru = p.run_lru(&test);
    let cross = p.run_thermometer(&test, &hints);
    assert!(
        (cross.btb.misses as f64) < lru.btb.misses as f64 * 1.25,
        "cross-input thermometer {} blew past lru {}",
        cross.btb.misses,
        lru.btb.misses
    );
}

#[test]
fn same_input_profile_is_at_least_as_good_as_cross_input() {
    let spec = AppSpec::by_name("kafka").unwrap();
    let train = spec.generate(InputConfig::input(0), LEN);
    let test = spec.generate(InputConfig::input(1), LEN);
    let p = small_pipeline();
    let cross = p.run_thermometer(&test, &p.profile_to_hints(&train));
    let same = p.run_thermometer(&test, &p.profile_to_hints(&test));
    assert!(
        same.btb.misses <= cross.btb.misses,
        "same-input {} should not lose to cross-input {}",
        same.btb.misses,
        cross.btb.misses
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let spec = AppSpec::by_name("python").unwrap();
    let run = || {
        let train = spec.generate(InputConfig::input(0), 60_000);
        let test = spec.generate(InputConfig::input(1), 60_000);
        let p = pipeline();
        let hints = p.profile_to_hints(&train);
        let report = p.run_thermometer(&test, &hints);
        (report.cycles.to_bits(), report.btb.clone())
    };
    assert_eq!(run(), run());
}

#[test]
fn hint_agreement_across_inputs_is_high() {
    // The paper reports ~81% of branches keep their category across inputs.
    let spec = AppSpec::by_name("finagle-http").unwrap();
    let p = pipeline();
    let a = p.profile_to_hints(&spec.generate(InputConfig::input(0), LEN));
    let b = p.profile_to_hints(&spec.generate(InputConfig::input(2), LEN));
    let agreement = a.agreement_with(&b);
    assert!(agreement > 0.6, "agreement {agreement}");
}

#[test]
fn profile_counters_reconcile_with_trace_stats() {
    let spec = AppSpec::by_name("python").unwrap();
    let trace = spec.generate(InputConfig::input(0), 80_000);
    let stats = TraceStats::collect(&trace);
    let profile = pipeline().profile(&trace);

    assert_eq!(profile.unique_branches(), stats.unique_taken_branches());
    for (pc, counters) in &profile.branches {
        let summary = &stats.branches[pc];
        assert_eq!(counters.taken, summary.taken_count, "pc {pc:#x}");
        assert_eq!(
            counters.taken,
            counters.opt_hits + counters.inserts + counters.bypasses,
            "pc {pc:#x} counters must partition taken executions"
        );
    }
}

#[test]
fn temperatures_depend_on_btb_geometry() {
    // §3.4 "BTB size dependency": a bigger BTB keeps more branches, so more
    // of them classify hot.
    let spec = AppSpec::by_name("kafka").unwrap();
    let trace = spec.generate(InputConfig::input(0), LEN);
    let hot_share = |entries: usize| {
        let profile = thermometer::OptProfile::measure(&trace, BtbConfig::new(entries, 4));
        let hints = HintTable::from_profile(&profile, &TemperatureConfig::paper_default());
        let hist = hints.category_histogram();
        let total: usize = hist.iter().sum();
        hist[2] as f64 / total as f64
    };
    let small = hot_share(512);
    let large = hot_share(16384);
    assert!(
        large > small,
        "hot share should grow with capacity: {small} vs {large}"
    );
}

#[test]
fn iso_storage_variant_stays_competitive() {
    let spec = AppSpec::by_name("kafka").unwrap();
    let train = spec.generate(InputConfig::input(0), LEN);
    let test = spec.generate(InputConfig::input(1), LEN);
    let base = pipeline();
    let iso = base.with_btb(BtbConfig::iso_storage_7979());
    let lru_8192 = base.run_lru(&test);
    let therm_iso = iso.run_thermometer(&test, &iso.profile_to_hints(&train));
    // The 213 sacrificed entries must not erase Thermometer's advantage.
    assert!(
        therm_iso.ipc() >= lru_8192.ipc() * 0.995,
        "iso-storage thermometer {:.4} far below lru {:.4}",
        therm_iso.ipc(),
        lru_8192.ipc()
    );
}
