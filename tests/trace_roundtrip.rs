//! Trace serialization fidelity: a workload trace written to the binary
//! codec and read back must be bit-identical and produce the identical
//! simulation result — through the per-record reference decoder and the
//! batch decoder alike, with identical error classification on malformed
//! input.

use btb_trace::{
    read_binary, read_binary_batched, write_binary, BatchReader, BranchKind, BranchRecord,
    CodecError, Trace, TraceStats,
};
use btb_workloads::{AppSpec, InputConfig};
use sim_support::{forall, SimRng};
use thermometer::pipeline::{Pipeline, PipelineConfig};

#[test]
fn workload_traces_roundtrip_through_the_codec() {
    for name in ["kafka", "verilator", "python"] {
        let spec = AppSpec::by_name(name).expect("built-in app");
        let trace = spec.generate(InputConfig::input(0), 50_000);
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).expect("write to memory");
        let back = read_binary(&mut buf.as_slice()).expect("read back");
        assert_eq!(back, trace, "{name}: codec roundtrip changed the trace");

        // Compact: delta+varint encoding should beat 29 bytes/record raw.
        let bytes_per_record = buf.len() as f64 / trace.len() as f64;
        assert!(
            bytes_per_record < 12.0,
            "{name}: {bytes_per_record:.1} bytes/record"
        );
    }
}

#[test]
fn decoded_trace_simulates_identically() {
    let spec = AppSpec::by_name("finagle-http").expect("built-in app");
    let trace = spec.generate(InputConfig::input(1), 60_000);
    let mut buf = Vec::new();
    write_binary(&mut buf, &trace).expect("write");
    let decoded = read_binary(&mut buf.as_slice()).expect("read");

    let pipeline = Pipeline::new(PipelineConfig::default());
    let original = pipeline.run_lru(&trace);
    let roundtripped = pipeline.run_lru(&decoded);
    assert_eq!(original, roundtripped);
}

fn arb_record(rng: &mut SimRng) -> BranchRecord {
    let kind = BranchKind::from_code(rng.gen_range(0u32..6) as u8).expect("codes 0..6 are valid");
    let taken = rng.gen::<bool>() || !kind.is_conditional();
    BranchRecord {
        pc: rng.gen(),
        target: rng.gen(),
        kind,
        taken,
        inst_gap: rng.gen(),
    }
}

/// The two decoders must classify an error identically; the payloads (e.g.
/// the io::Error inside `Io`) need not be comparable.
fn same_variant(a: &CodecError, b: &CodecError) -> bool {
    std::mem::discriminant(a) == std::mem::discriminant(b)
        && match (a, b) {
            (CodecError::UnsupportedVersion(x), CodecError::UnsupportedVersion(y)) => x == y,
            (CodecError::BadKind(x), CodecError::BadKind(y)) => x == y,
            (CodecError::NameTooLong(x), CodecError::NameTooLong(y)) => x == y,
            (CodecError::Overflow(x), CodecError::Overflow(y)) => x == y,
            _ => true,
        }
}

#[test]
fn batch_decoding_is_equivalent_to_per_record_decoding() {
    // Random traces spanning the batch-size boundaries (empty, one short
    // block, exactly one block, several blocks plus a partial tail): both
    // decoders must return the identical trace.
    forall!(cases: 48, gen: |rng| {
        let len = match rng.gen_range(0u32..4) {
            0 => rng.gen_range(0usize..4),
            1 => rng.gen_range(1000usize..1100), // straddles 1024
            2 => 1024,
            _ => rng.gen_range(2048usize..2600),
        };
        (0..len).map(|_| arb_record(rng)).collect::<Vec<BranchRecord>>()
    }, shrink: sim_support::forall::shrink_halves, prop: |records| {
        let t = Trace::from_records("batch-eq", records.clone());
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).expect("write to memory");
        let reference = read_binary(&mut buf.as_slice()).expect("reference decode");
        let batched = read_binary_batched(&mut buf.as_slice()).expect("batched decode");
        assert_eq!(batched, reference);
        assert_eq!(batched, t);
    });
}

#[test]
fn batch_reader_reuses_the_caller_buffer() {
    let records: Vec<BranchRecord> = {
        let mut rng = SimRng::seed_from_u64(7);
        (0..3000).map(|_| arb_record(&mut rng)).collect()
    };
    let t = Trace::from_records("buffer-reuse", records);
    let mut buf = Vec::new();
    write_binary(&mut buf, &t).expect("write");

    let mut reader = BatchReader::new(buf.as_slice()).expect("header");
    assert_eq!(reader.name(), "buffer-reuse");
    assert_eq!(reader.remaining(), 3000);
    let mut batch = Vec::new();
    let mut total = 0usize;
    let mut sizes = Vec::new();
    let mut cap_after_first = 0usize;
    while reader.next_batch(&mut batch).expect("decode") > 0 {
        if sizes.is_empty() {
            cap_after_first = batch.capacity();
        }
        sizes.push(batch.len());
        total += batch.len();
    }
    assert_eq!(total, 3000);
    assert_eq!(sizes, [1024, 1024, 952], "full blocks then the tail");
    assert_eq!(reader.remaining(), 0);
    // Capacity settled after the first block and was reused, not regrown.
    assert_eq!(batch.capacity(), cap_after_first);
}

#[test]
fn truncations_error_identically_in_both_decoders() {
    // Every strict prefix cut — mid-header, mid-record, and specifically
    // inside the *final* block of a multi-block trace — must fail in both
    // decoders with the same error variant (Truncated, or the header error
    // the cut exposes). A batch decoder that buffers ahead could plausibly
    // return the records it already decoded; equivalence forbids that.
    let records: Vec<BranchRecord> = {
        let mut rng = SimRng::seed_from_u64(11);
        (0..2100).map(|_| arb_record(&mut rng)).collect()
    };
    let t = Trace::from_records("truncate", records);
    let mut buf = Vec::new();
    write_binary(&mut buf, &t).expect("write");

    let mut cuts = vec![0, 1, 3, 4, 5, 9, 10, buf.len() / 2, buf.len() - 1];
    // A spread of cuts inside the final block's byte range.
    let final_block_floor = (buf.len() * 2048) / 2100;
    for i in 0..8 {
        cuts.push(final_block_floor + i * (buf.len() - 1 - final_block_floor) / 8);
    }
    for cut in cuts {
        let reference = read_binary(&mut &buf[..cut]).expect_err("prefix must not decode");
        let batched = read_binary_batched(&mut &buf[..cut]).expect_err("prefix must not decode");
        assert!(
            same_variant(&reference, &batched),
            "cut={cut}: reference {reference:?} vs batched {batched:?}"
        );
        assert!(
            matches!(batched, CodecError::Truncated | CodecError::BadMagic),
            "cut={cut}: {batched:?}"
        );
    }
}

#[test]
fn corrupt_inputs_error_identically_in_both_decoders() {
    use sim_support::fault::Corruption;
    // Bit flips, byte swaps, truncations, garbage: whatever the reference
    // decoder does (accept or reject, and with which error), the batch
    // decoder must do the same. This subsumes corrupt length prefixes
    // (record count, name length, overlong varints).
    forall!(cases: 192, gen: |rng| {
        let len = rng.gen_range(0usize..60);
        let records: Vec<BranchRecord> = (0..len).map(|_| arb_record(rng)).collect();
        let t = Trace::from_records("corrupt-eq", records);
        let mut bytes = Vec::new();
        write_binary(&mut bytes, &t).expect("write");
        let corruption = Corruption::arbitrary(rng, bytes.len());
        (bytes, corruption)
    }, prop: |(bytes, corruption)| {
        let mut corrupted = bytes.clone();
        corruption.apply(&mut corrupted);
        let reference = read_binary(&mut corrupted.as_slice());
        let batched = read_binary_batched(&mut corrupted.as_slice());
        match (reference, batched) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "decoders accepted different traces"),
            (Err(a), Err(b)) => assert!(
                same_variant(&a, &b),
                "reference {a:?} vs batched {b:?} for {corruption:?}"
            ),
            (a, b) => panic!("decoders disagree: reference {a:?} vs batched {b:?}"),
        }
    });
}

#[test]
fn corrupt_record_count_is_detected_not_trusted() {
    // Inflate the record-count prefix past the actual payload: the decode
    // must end in Truncated (in both decoders), never in a partial trace.
    let records: Vec<BranchRecord> = {
        let mut rng = SimRng::seed_from_u64(23);
        (0..100).map(|_| arb_record(&mut rng)).collect()
    };
    let t = Trace::from_records("x", records);
    let mut buf = Vec::new();
    write_binary(&mut buf, &t).expect("write");
    // Header: 4 magic + 1 version + 1 name-len + 1 name byte; the count
    // (100) is the single byte right after.
    assert_eq!(buf[7], 100);
    buf[7] = 101;
    assert!(matches!(
        read_binary(&mut buf.as_slice()),
        Err(CodecError::Truncated)
    ));
    assert!(matches!(
        read_binary_batched(&mut buf.as_slice()),
        Err(CodecError::Truncated)
    ));
}

#[test]
fn stats_survive_roundtrip() {
    let spec = AppSpec::by_name("mysql").expect("built-in app");
    let trace = spec.generate(InputConfig::input(0), 40_000);
    let mut buf = Vec::new();
    write_binary(&mut buf, &trace).expect("write");
    let decoded = read_binary(&mut buf.as_slice()).expect("read");

    let a = TraceStats::collect(&trace);
    let b = TraceStats::collect(&decoded);
    assert_eq!(a.dynamic_branches, b.dynamic_branches);
    assert_eq!(a.dynamic_taken, b.dynamic_taken);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.unique_branches(), b.unique_branches());
}
