//! Trace serialization fidelity: a workload trace written to the binary
//! codec and read back must be bit-identical and produce the identical
//! simulation result.

use btb_trace::{read_binary, write_binary, TraceStats};
use btb_workloads::{AppSpec, InputConfig};
use thermometer::pipeline::{Pipeline, PipelineConfig};

#[test]
fn workload_traces_roundtrip_through_the_codec() {
    for name in ["kafka", "verilator", "python"] {
        let spec = AppSpec::by_name(name).expect("built-in app");
        let trace = spec.generate(InputConfig::input(0), 50_000);
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).expect("write to memory");
        let back = read_binary(&mut buf.as_slice()).expect("read back");
        assert_eq!(back, trace, "{name}: codec roundtrip changed the trace");

        // Compact: delta+varint encoding should beat 29 bytes/record raw.
        let bytes_per_record = buf.len() as f64 / trace.len() as f64;
        assert!(
            bytes_per_record < 12.0,
            "{name}: {bytes_per_record:.1} bytes/record"
        );
    }
}

#[test]
fn decoded_trace_simulates_identically() {
    let spec = AppSpec::by_name("finagle-http").expect("built-in app");
    let trace = spec.generate(InputConfig::input(1), 60_000);
    let mut buf = Vec::new();
    write_binary(&mut buf, &trace).expect("write");
    let decoded = read_binary(&mut buf.as_slice()).expect("read");

    let pipeline = Pipeline::new(PipelineConfig::default());
    let original = pipeline.run_lru(&trace);
    let roundtripped = pipeline.run_lru(&decoded);
    assert_eq!(original, roundtripped);
}

#[test]
fn stats_survive_roundtrip() {
    let spec = AppSpec::by_name("mysql").expect("built-in app");
    let trace = spec.generate(InputConfig::input(0), 40_000);
    let mut buf = Vec::new();
    write_binary(&mut buf, &trace).expect("write");
    let decoded = read_binary(&mut buf.as_slice()).expect("read");

    let a = TraceStats::collect(&trace);
    let b = TraceStats::collect(&decoded);
    assert_eq!(a.dynamic_branches, b.dynamic_branches);
    assert_eq!(a.dynamic_taken, b.dynamic_taken);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.unique_branches(), b.unique_branches());
}
