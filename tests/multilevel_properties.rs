//! Property battery for the two-level BTB hierarchies in
//! `btb_model::multilevel`.
//!
//! Three invariants, each checked after *every* access of a randomized
//! stream (not just at the end), so a transiently broken state cannot hide
//! behind a later repair:
//!
//! * **Inclusion** — the inclusive [`TwoLevelBtb`] never holds a branch in
//!   L1 that is absent from L2. This is exactly the contract
//!   back-invalidation exists to keep: without it, an L2 eviction would
//!   leave a stale L1 copy serving hits for a branch the hierarchy already
//!   gave up.
//! * **Exclusivity** — the victim-style [`ExclusiveTwoLevelBtb`] never
//!   holds the same branch in both levels, across demand accesses *and*
//!   prefetch fills.
//! * **Conservation** — both hierarchies classify every access as exactly
//!   one of hit/miss, and they observe the same access stream as a flat
//!   reference BTB driven in lockstep.

use btb_model::policies::{Lru, Srrip, Trrip};
use btb_model::{
    AccessContext, Btb, BtbConfig, BtbInterface, ExclusiveTwoLevelBtb, ReplacementPolicy,
    TwoLevelBtb,
};
use btb_trace::BranchKind;
use sim_support::{forall, SimRng};

/// One randomized step: mostly demand accesses, occasionally a hinted
/// prefetch fill (which exercises the spill/back-invalidate paths that
/// demand traffic alone would not).
#[derive(Debug, Clone)]
enum Op {
    Access { pc: u64, target: u64 },
    Prefetch { pc: u64, target: u64, hint: u8 },
}

/// A stream plus the geometries it runs against. The pc alphabet is small
/// (multiples of 4 below `universe`) so set conflicts — the only source of
/// evictions, spills, and back-invalidations — are frequent.
#[derive(Debug, Clone)]
struct Case {
    ops: Vec<Op>,
    l1: (usize, usize),
    l2: (usize, usize),
    universe: u64,
}

fn arb_case(rng: &mut SimRng) -> Case {
    let universe = rng.gen_range(8u64..40);
    let len = rng.gen_range(1usize..400);
    let ops = (0..len)
        .map(|_| {
            let pc = rng.gen_range(0..universe) * 4;
            let target = 0x1000 + rng.gen_range(0u64..5) * 8;
            if rng.gen_range(0u32..8) == 0 {
                Op::Prefetch {
                    pc,
                    target,
                    hint: rng.gen_range(0u32..4) as u8,
                }
            } else {
                Op::Access { pc, target }
            }
        })
        .collect();
    // L1 strictly smaller than L2 (the constructors assert it).
    let l1_ways = rng.gen_range(1usize..3);
    let l1_sets = rng.gen_range(1usize..3);
    let l2_ways = rng.gen_range(1usize..5);
    let l2_sets = rng.gen_range(1usize..5);
    let l1 = (l1_sets * l1_ways).min(l2_sets * l2_ways.max(2) - 1).max(1);
    Case {
        ops,
        l1: (l1, l1_ways.min(l1)),
        l2: (l1 + l2_sets * l2_ways, l2_ways),
        universe,
    }
}

fn shrink_case(case: &Case) -> Vec<Case> {
    if case.ops.len() < 2 {
        return Vec::new();
    }
    let mid = case.ops.len() / 2;
    let mut halves = Vec::new();
    for ops in [case.ops[..mid].to_vec(), case.ops[mid..].to_vec()] {
        let mut c = case.clone();
        c.ops = ops;
        halves.push(c);
    }
    halves
}

fn ctx(pc: u64, target: u64, index: u64) -> AccessContext {
    AccessContext {
        pc,
        target,
        kind: BranchKind::UncondDirect,
        hint: 0,
        next_use: u64::MAX,
        access_index: index,
    }
}

fn apply<B: BtbInterface>(btb: &mut B, op: &Op, index: u64) {
    match *op {
        Op::Access { pc, target } => {
            btb.access(&ctx(pc, target, index));
        }
        Op::Prefetch { pc, target, hint } => {
            btb.prefetch_fill_hinted(pc, target, BranchKind::UncondDirect, hint);
        }
    }
}

#[test]
fn prop_inclusive_l1_is_a_subset_of_l2() {
    forall!(cases: 48, gen: arb_case, shrink: shrink_case, prop: |case: &Case| {
        let mut btb = TwoLevelBtb::new(
            BtbConfig::new(case.l1.0, case.l1.1),
            BtbConfig::new(case.l2.0, case.l2.1),
            Lru::new(),
        );
        for (i, op) in case.ops.iter().enumerate() {
            apply(&mut btb, op, i as u64);
            for pc in (0..case.universe).map(|p| p * 4) {
                if btb.l1().probe(pc).is_some() {
                    assert!(
                        btb.l2().probe(pc).is_some(),
                        "inclusion broken after op {i}: {pc:#x} in L1 but not L2"
                    );
                }
            }
        }
    });
}

#[test]
fn prop_exclusive_never_holds_a_pc_in_both_levels() {
    forall!(cases: 48, gen: arb_case, shrink: shrink_case, prop: |case: &Case| {
        let mut btb = ExclusiveTwoLevelBtb::new(
            BtbConfig::new(case.l1.0, case.l1.1),
            BtbConfig::new(case.l2.0, case.l2.1),
            Lru::new(),
        );
        for (i, op) in case.ops.iter().enumerate() {
            apply(&mut btb, op, i as u64);
            for pc in (0..case.universe).map(|p| p * 4) {
                let both = btb.l1().probe(pc).is_some() && btb.l2().probe(pc).is_some();
                assert!(!both, "exclusivity broken after op {i}: {pc:#x} in both levels");
            }
        }
    });
}

/// Drives a hierarchy and a flat reference BTB in lockstep and checks the
/// aggregate accounting: the hierarchy sees exactly the accesses the flat
/// run sees, every one classified as exactly one of hit/miss, and the
/// wrapper's per-level counters add back up to the total.
fn conservation<B: BtbInterface>(case: &Case, btb: &mut B, level_hits: impl Fn(&B) -> u64) {
    let mut flat = Btb::new(BtbConfig::new(case.l2.0, case.l2.1), Lru::new());
    let mut demand = 0u64;
    for (i, op) in case.ops.iter().enumerate() {
        apply(btb, op, i as u64);
        apply(&mut flat, op, i as u64);
        if matches!(op, Op::Access { .. }) {
            demand += 1;
        }
    }
    let s = btb.stats();
    let f = flat.stats().clone();
    assert_eq!(
        s.accesses, demand,
        "hierarchy must count every demand access"
    );
    assert_eq!(
        s.accesses, f.accesses,
        "flat reference saw a different stream"
    );
    assert_eq!(
        f.hits + f.misses,
        f.accesses,
        "flat accounting must conserve"
    );
    assert_eq!(
        s.hits + s.misses,
        s.accesses,
        "every access must be exactly one of hit/miss"
    );
    assert_eq!(
        level_hits(btb),
        s.hits,
        "per-level hit counters must add up to the total"
    );
}

#[test]
fn prop_hierarchy_stats_conserve_against_a_flat_run() {
    forall!(cases: 48, gen: arb_case, shrink: shrink_case, prop: |case: &Case| {
        let mut incl = TwoLevelBtb::new(
            BtbConfig::new(case.l1.0, case.l1.1),
            BtbConfig::new(case.l2.0, case.l2.1),
            Lru::new(),
        );
        conservation(case, &mut incl, |b| b.l1_hits + b.l2_hits);
        let mut excl = ExclusiveTwoLevelBtb::new(
            BtbConfig::new(case.l1.0, case.l1.1),
            BtbConfig::new(case.l2.0, case.l2.1),
            Lru::new(),
        );
        conservation(case, &mut excl, |b| b.l1_hits + b.l2_hits);
    });
}

/// The invariants are not LRU artifacts: the same batteries hold with
/// RRIP-family policies (including hint-driven TRRIP) managing the last
/// level.
#[test]
fn prop_invariants_hold_for_rrip_family_last_levels() {
    fn run_zoo<P: ReplacementPolicy>(case: &Case, make: impl Fn() -> P) {
        let l1 = BtbConfig::new(case.l1.0, case.l1.1);
        let l2 = BtbConfig::new(case.l2.0, case.l2.1);
        let mut incl = TwoLevelBtb::new(l1, l2, make());
        let mut excl = ExclusiveTwoLevelBtb::new(l1, l2, make());
        for (i, op) in case.ops.iter().enumerate() {
            apply(&mut incl, op, i as u64);
            apply(&mut excl, op, i as u64);
            for pc in (0..case.universe).map(|p| p * 4) {
                if incl.l1().probe(pc).is_some() {
                    assert!(
                        incl.l2().probe(pc).is_some(),
                        "inclusion broken for {} after op {i}",
                        incl.l2().policy().name()
                    );
                }
                let both = excl.l1().probe(pc).is_some() && excl.l2().probe(pc).is_some();
                assert!(
                    !both,
                    "exclusivity broken for {} after op {i}",
                    excl.l2().policy().name()
                );
            }
        }
        let s = incl.stats();
        assert_eq!(s.hits + s.misses, s.accesses);
        let s = excl.stats();
        assert_eq!(s.hits + s.misses, s.accesses);
    }
    forall!(cases: 24, gen: arb_case, shrink: shrink_case, prop: |case: &Case| {
        run_zoo(case, Srrip::new);
        run_zoo(case, Trrip::new);
    });
}
