//! Differential test battery: pairs of policies that must be *behaviourally
//! identical* under constrained configurations, plus OPT dominance over the
//! full policy zoo.
//!
//! Differential pairs are the cheapest cross-checks the policy zoo admits:
//!
//! * **LRU ≡ tree-PLRU at 1–2 ways.** A PLRU tree with two leaves is one
//!   bit pointing away from the last-touched way — exact LRU. Any
//!   divergence means one of the two recency implementations is wrong.
//! * **SRRIP ≡ DRRIP pinned to SRRIP.** With set dueling frozen
//!   ([`Drrip::pinned_srrip`]) every set inserts at the long re-reference
//!   point, so DRRIP's RRPV machinery (victim scan, aging, hit promotion)
//!   must reproduce SRRIP access for access.
//! * **SRRIP ≡ TRRIP with temperature collapsed.** TRRIP's only deviation
//!   from SRRIP is choosing insertion/promotion RRPVs by temperature
//!   class; with every class pinned to warm ([`Trrip::pinned_srrip`]) or
//!   every hint uniformly warm, it must be bit-identical to SRRIP — over
//!   random streams *and* the full 13-app trace corpus.
//! * **OPT dominance.** No online policy — including the extension zoo
//!   (FIFO, PLRU, DRRIP, TRRIP, SHiP, Random) — collects more hits than
//!   Belady's OPT on the same trace.

use btb_model::policies::{
    BeladyOpt, Drrip, Fifo, Ghrp, GhrpConfig, Hawkeye, HawkeyeConfig, Lru, PseudoLru, Random, Ship,
    Srrip, Trrip,
};
use btb_model::{AccessContext, Btb, BtbConfig, BtbStats, ReplacementPolicy};
use btb_trace::{BranchKind, BranchRecord, NextUseOracle, Trace};
use btb_workloads::{AppSpec, InputConfig};
use sim_support::forall;

fn workload(name: &str) -> Trace {
    AppSpec::by_name(name)
        .expect("built-in app")
        .generate(InputConfig::input(0), 100_000)
}

fn drive<P: ReplacementPolicy>(
    trace: &Trace,
    policy: P,
    config: BtbConfig,
    oracle: bool,
) -> BtbStats {
    drive_hinted(trace, policy, config, oracle, 0)
}

/// Like [`drive`], but stamps every access with a uniform temperature
/// hint — the knob the TRRIP ≡ SRRIP differentials turn.
fn drive_hinted<P: ReplacementPolicy>(
    trace: &Trace,
    policy: P,
    config: BtbConfig,
    oracle: bool,
    hint: u8,
) -> BtbStats {
    let oracle = oracle.then(|| NextUseOracle::build(trace));
    let mut btb = Btb::new(config, policy);
    for (i, r) in trace.taken().enumerate() {
        let ctx = AccessContext {
            pc: r.pc,
            target: r.target,
            kind: r.kind,
            hint,
            next_use: oracle.as_ref().map_or(u64::MAX, |o| o.next_use(i)),
            access_index: i as u64,
        };
        btb.access(&ctx);
    }
    btb.stats().clone()
}

/// A synthetic trace over a small PC alphabet, with a mix of branch kinds
/// so the hit path (target updates) is exercised too.
fn synthetic(pcs: &[u64]) -> Trace {
    let mut t = Trace::new("policy-differential");
    for (i, &pc) in pcs.iter().enumerate() {
        let kind = match pc % 3 {
            0 => BranchKind::UncondDirect,
            1 => BranchKind::CondDirect,
            _ => BranchKind::IndirectJump,
        };
        t.push(BranchRecord::taken(pc << 2, 0x40 + (i as u64 % 7), kind, 0));
    }
    t
}

#[test]
fn prop_plru_equals_lru_at_one_and_two_ways() {
    forall!(cases: 48, gen: |rng| {
        let len = rng.gen_range(1usize..500);
        let pcs: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..64)).collect();
        let ways = rng.gen_range(1usize..=2);
        let sets = rng.gen_range(1usize..9);
        (pcs, sets * ways, ways)
    }, prop: |(pcs, entries, ways)| {
        let trace = synthetic(pcs);
        let config = BtbConfig::new(*entries, *ways);
        let lru = drive(&trace, Lru::new(), config, false);
        let plru = drive(&trace, PseudoLru::new(), config, false);
        assert_eq!(
            lru, plru,
            "LRU and tree-PLRU diverged at {ways} way(s), {entries} entries"
        );
    });
}

#[test]
fn plru_equals_lru_on_real_workloads_at_two_ways() {
    for name in ["kafka", "python"] {
        let trace = workload(name);
        let config = BtbConfig::new(1024, 2);
        let lru = drive(&trace, Lru::new(), config, false);
        let plru = drive(&trace, PseudoLru::new(), config, false);
        assert_eq!(lru, plru, "{name}: 2-way PLRU must be exact LRU");
    }
}

#[test]
fn prop_pinned_drrip_equals_srrip() {
    forall!(cases: 48, gen: |rng| {
        let len = rng.gen_range(1usize..600);
        let pcs: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..96)).collect();
        let ways = rng.gen_range(1usize..6);
        let sets = rng.gen_range(1usize..17);
        (pcs, sets * ways, ways)
    }, prop: |(pcs, entries, ways)| {
        let trace = synthetic(pcs);
        let config = BtbConfig::new(*entries, *ways);
        let srrip = drive(&trace, Srrip::new(), config, false);
        let drrip = drive(&trace, Drrip::pinned_srrip(), config, false);
        assert_eq!(
            srrip, drrip,
            "pinned DRRIP diverged from SRRIP at {ways} ways, {entries} entries"
        );
    });
}

#[test]
fn pinned_drrip_equals_srrip_on_real_workloads() {
    for name in ["kafka", "finagle-http"] {
        let trace = workload(name);
        let config = BtbConfig::new(2048, 4);
        let srrip = drive(&trace, Srrip::new(), config, false);
        let drrip = drive(&trace, Drrip::pinned_srrip(), config, false);
        assert_eq!(srrip, drrip, "{name}: pinned DRRIP must match SRRIP");
    }
    // Sanity: the un-pinned selector actually changes behaviour somewhere
    // (otherwise the pin proves nothing).
    let thrash: Vec<u64> = (0..60_000).map(|i| i % 128).collect();
    let trace = synthetic(&thrash);
    let config = BtbConfig::new(64, 4);
    let srrip = drive(&trace, Srrip::new(), config, false);
    let full = drive(&trace, Drrip::new(), config, false);
    assert_ne!(
        srrip, full,
        "full DRRIP should diverge from SRRIP on a thrashing loop"
    );
}

#[test]
fn prop_pinned_trrip_equals_srrip() {
    forall!(cases: 48, gen: |rng| {
        let len = rng.gen_range(1usize..600);
        let pcs: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..96)).collect();
        let ways = rng.gen_range(1usize..6);
        let sets = rng.gen_range(1usize..17);
        let hint = rng.gen_range(0u32..4) as u8;
        (pcs, sets * ways, ways, hint)
    }, prop: |(pcs, entries, ways, hint)| {
        let trace = synthetic(pcs);
        let config = BtbConfig::new(*entries, *ways);
        let srrip = drive(&trace, Srrip::new(), config, false);
        // Pinned TRRIP must ignore whatever hint the frontend supplies.
        let trrip = drive_hinted(&trace, Trrip::pinned_srrip(), config, false, *hint);
        assert_eq!(
            srrip, trrip,
            "pinned TRRIP diverged from SRRIP at {ways} ways, {entries} entries (hint {hint})"
        );
    });
}

#[test]
fn prop_uniformly_warm_trrip_equals_srrip() {
    // The un-pinned policy, with every access hinted warm: the warm class's
    // insertion/promotion RRPVs are exactly SRRIP's constants, so the
    // temperature machinery must be invisible.
    forall!(cases: 48, gen: |rng| {
        let len = rng.gen_range(1usize..600);
        let pcs: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..96)).collect();
        let ways = rng.gen_range(1usize..6);
        let sets = rng.gen_range(1usize..17);
        (pcs, sets * ways, ways)
    }, prop: |(pcs, entries, ways)| {
        let trace = synthetic(pcs);
        let config = BtbConfig::new(*entries, *ways);
        let srrip = drive(&trace, Srrip::new(), config, false);
        let trrip = drive_hinted(&trace, Trrip::new(), config, false, 1);
        assert_eq!(
            srrip, trrip,
            "uniformly-warm TRRIP diverged from SRRIP at {ways} ways, {entries} entries"
        );
    });
}

#[test]
fn collapsed_trrip_equals_srrip_over_the_full_corpus() {
    // Bit-identical statistics on every one of the 13 application models,
    // both ways of collapsing the temperature axis: pinning the policy and
    // hinting every access warm.
    let config = BtbConfig::new(2048, 4);
    for spec in AppSpec::all() {
        let trace = spec.generate(InputConfig::input(0), 100_000);
        let srrip = drive(&trace, Srrip::new(), config, false);
        let pinned = drive_hinted(&trace, Trrip::pinned_srrip(), config, false, 2);
        assert_eq!(
            srrip, pinned,
            "{}: pinned TRRIP must match SRRIP",
            spec.name
        );
        let warm = drive_hinted(&trace, Trrip::new(), config, false, 1);
        assert_eq!(
            srrip, warm,
            "{}: uniformly-warm TRRIP must match SRRIP",
            spec.name
        );
    }
    // Sanity: a *different* uniform class must diverge somewhere, or the
    // equivalences above prove nothing about the temperature plumbing.
    let trace = workload("kafka");
    let srrip = drive(&trace, Srrip::new(), config, false);
    let cold = drive_hinted(&trace, Trrip::new(), config, false, 0);
    assert_ne!(
        srrip, cold,
        "uniformly-cold TRRIP should diverge from SRRIP on kafka"
    );
}

#[test]
fn prop_no_policy_in_the_full_zoo_beats_opt() {
    forall!(cases: 24, gen: |rng| {
        let len = rng.gen_range(1usize..400);
        let pcs: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..48)).collect();
        let ways = rng.gen_range(1usize..5);
        let sets = rng.gen_range(1usize..9);
        (pcs, sets * ways, ways)
    }, prop: |(pcs, entries, ways)| {
        let trace = synthetic(pcs);
        let config = BtbConfig::new(*entries, *ways);
        let opt = drive(&trace, BeladyOpt::new(), config, true);
        for (label, stats) in [
            ("LRU", drive(&trace, Lru::new(), config, false)),
            ("FIFO", drive(&trace, Fifo::new(), config, false)),
            ("PLRU", drive(&trace, PseudoLru::new(), config, false)),
            ("Random", drive(&trace, Random::with_seed(17), config, false)),
            ("SRRIP", drive(&trace, Srrip::new(), config, false)),
            ("DRRIP", drive(&trace, Drrip::new(), config, false)),
            ("DRRIP-pinned", drive(&trace, Drrip::pinned_srrip(), config, false)),
            ("TRRIP", drive(&trace, Trrip::new(), config, false)),
            ("TRRIP-warm", drive_hinted(&trace, Trrip::new(), config, false, 1)),
            ("TRRIP-pinned", drive(&trace, Trrip::pinned_srrip(), config, false)),
            ("SHiP", drive(&trace, Ship::new(), config, false)),
            ("GHRP", drive(&trace, Ghrp::new(GhrpConfig::default()), config, false)),
            ("Hawkeye", drive(&trace, Hawkeye::new(HawkeyeConfig::default()), config, false)),
        ] {
            assert!(
                opt.hits >= stats.hits,
                "OPT ({} hits) lost to {label} ({} hits)",
                opt.hits,
                stats.hits
            );
        }
    });
}

#[test]
fn full_zoo_hits_bounded_by_opt_on_a_real_workload() {
    let trace = workload("python");
    let config = BtbConfig::new(2048, 4);
    let opt = drive(&trace, BeladyOpt::new(), config, true);
    for (label, stats) in [
        ("FIFO", drive(&trace, Fifo::new(), config, false)),
        ("PLRU", drive(&trace, PseudoLru::new(), config, false)),
        ("DRRIP", drive(&trace, Drrip::new(), config, false)),
        ("SHiP", drive(&trace, Ship::new(), config, false)),
    ] {
        assert!(
            opt.hits >= stats.hits,
            "OPT ({}) lost to {label} ({})",
            opt.hits,
            stats.hits
        );
    }
}
