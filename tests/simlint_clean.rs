//! Workspace self-check: the repository must lint clean under its own
//! static-analysis tool, using the checked-in `simlint.toml`. This is the
//! executable form of the determinism contract — any new `HashMap` with a
//! default hasher, stray `Instant::now()`, ad-hoc thread, undocumented
//! env knob, naked `unsafe`, or unjustified `#[allow]` fails CI here.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    // This test is hosted by crates/simlint, so the workspace root is two
    // levels up from its manifest dir.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = simlint::load_config(&root).expect("simlint.toml parses");
    let diags = simlint::run(&root, &config).expect("workspace walk succeeds");
    assert!(
        diags.is_empty(),
        "workspace has unsuppressed lint findings:\n{}",
        simlint::render_text(&diags)
    );
}

#[test]
fn deleting_a_policy_from_one_registry_leg_fails_the_lint() {
    // The R-rules' reason to exist: un-wire one leg of a real zoo member
    // (in memory — the tree is untouched) and the registry must drift
    // loudly. If this test fails, a policy can be half-removed silently.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = simlint::load_config(&root).expect("simlint.toml parses");
    let mut files = simlint::load_files(&root, &config).expect("workspace walk succeeds");
    let pipeline = files
        .iter_mut()
        .find(|f| f.rel == "crates/core/src/pipeline.rs")
        .expect("names leg is in the walk");
    assert!(pipeline.text.contains("\"trrip\","), "zoo member present");
    pipeline.text = pipeline.text.replace("\"trrip\",", "");
    let diags = simlint::analyze(&files, &config);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "R01" && d.message.contains("\"trrip\"")),
        "dropping trrip from POLICY_NAMES must trip R01:\n{}",
        simlint::render_text(&diags)
    );
}

#[test]
fn self_check_battery_passes_on_the_real_workspace() {
    // The seeded-mutation battery (simlint --self-check) must hold against
    // the checked-in tree: baseline clean, and every seeded defect caught
    // by exactly the expected rules.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = simlint::load_config(&root).expect("simlint.toml parses");
    let failures = simlint::selfcheck::self_check(&root, &config).expect("workspace walk succeeds");
    assert!(failures.is_empty(), "self-check failures: {failures:#?}");
}

#[test]
fn policy_zoo_additions_are_lint_clean() {
    // Fixture-style pin on the sources added with the TRRIP + multilevel
    // hierarchy work: each must pass the determinism/safety rules on its
    // own, so a future edit cannot hide behind a broadened allowlist.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = simlint::load_config(&root).expect("simlint.toml parses");
    for rel in [
        "crates/btb/src/policies/trrip.rs",
        "crates/btb/src/multilevel.rs",
        "crates/btb/src/storage.rs",
        "crates/bench/src/figures/extensions.rs",
        "crates/bench/tests/figure_goldens.rs",
        "tests/multilevel_properties.rs",
    ] {
        let text = std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| {
            panic!("cannot read {rel}: {e}");
        });
        let diags = simlint::lint_source(rel, &text, &config);
        assert!(
            diags.is_empty(),
            "{rel} has unsuppressed lint findings:\n{}",
            simlint::render_text(&diags)
        );
    }
}

#[test]
fn central_allowlist_entries_all_carry_reasons() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = simlint::load_config(&root).expect("simlint.toml parses");
    for (rule, allows) in &config.allows {
        for a in allows {
            assert!(
                !a.reason.trim().is_empty(),
                "allow for {rule} at {} lacks a reason",
                a.path
            );
            assert!(
                root.join(&a.path).exists(),
                "allow for {rule} points at a missing path: {}",
                a.path
            );
        }
    }
}

#[test]
fn fixture_violations_are_real() {
    // Guard against the exclusion list rotting: the excluded fixtures must
    // actually contain violations the workspace walk would otherwise flag.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = simlint::load_config(&root).expect("simlint.toml parses");
    let fixtures = root.join("crates/simlint/tests/fixtures");
    for (name, rel, rule) in [
        ("d01_hit.rs", "crates/btb/src/f.rs", "D01"),
        ("d02_hit.rs", "crates/core/src/f.rs", "D02"),
        ("d03_hit.rs", "tests/f.rs", "D03"),
        ("d04_hit.rs", "crates/bench/src/f.rs", "D04"),
        ("s01_hit.rs", "crates/core/src/f.rs", "S01"),
        ("s02_hit.rs", "crates/core/src/f.rs", "S02"),
    ] {
        let text = std::fs::read_to_string(fixtures.join(name)).expect(name);
        let diags = simlint::lint_source(rel, &text, &config);
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "{name} should trip {rule}"
        );
    }
}
