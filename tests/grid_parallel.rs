//! Parallel-vs-serial equivalence: the figure grid must produce
//! **byte-identical** `FigureResult` output whatever the worker count, and
//! whatever order the cells actually execute in. This is the test that lets
//! `figures --threads N` exist at all without weakening PR 1's determinism
//! guarantees.
//!
//! Thread-count configuration is process-global (`pool::set_threads`), so
//! every test here serializes on one mutex and restores the default before
//! returning.

use std::sync::Mutex; // simlint: allow(D03) -- serializes tests that flip process-global config

use sim_support::pool;
use thermometer_bench::{figure_by_id, grid, Scale};

/// Serializes the tests in this binary: they flip process-global executor
/// configuration.
// simlint: allow(D03) -- test-only serialization lock, not simulator state
static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// Restores the default thread configuration even if an assertion fails.
struct ResetThreads;
impl Drop for ResetThreads {
    fn drop(&mut self) {
        pool::set_threads(0);
    }
}

fn render(ids: &[&str], scale: &Scale) -> String {
    let mut out = String::new();
    for id in ids {
        for fig in figure_by_id(id, scale).expect("known figure id") {
            out.push_str(&fig.to_markdown());
        }
    }
    out
}

/// FNV-1a — the same hash the workload goldens pin trace streams with.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[test]
fn four_threads_match_one_thread_byte_for_byte() {
    let _exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetThreads;
    let scale = Scale::smoke();
    // Per-app figures plus fig17 (per-trace suite grid) so both grid entry
    // points are exercised, plus the extension suites whose cells run
    // several frontends each (trrip head-to-head, hierarchy sweep).
    let ids = ["fig01", "fig09", "fig15", "fig17", "trrip", "hierarchy"];

    pool::set_threads(1);
    let serial = render(&ids, &scale);
    pool::set_threads(4);
    let parallel = render(&ids, &scale);

    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "--threads 4 output differs from --threads 1"
    );
    assert_eq!(
        fnv1a(serial.as_bytes()),
        fnv1a(parallel.as_bytes()),
        "golden hashes differ"
    );
}

/// Regression for the PRNG-sharing hazard: executing the same cells in
/// **reverse** order must gather the same results, which is only true if no
/// RNG (or any other mutable state) is threaded across cells.
#[test]
fn permuted_cell_execution_order_is_invisible() {
    let _exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetThreads;
    let scale = Scale::smoke();
    let ids = ["fig01", "fig06"];

    pool::set_threads(1);
    let forward = render(&ids, &scale);
    let reversed = grid::with_reversed_serial_order(|| render(&ids, &scale));
    assert_eq!(
        forward, reversed,
        "cell results depend on execution order — a cross-cell RNG or \
         shared mutable state leaked into the grid"
    );

    // The per-cell RNG streams themselves are order-independent too.
    let items: Vec<usize> = (0..8).collect();
    let draw = |_: &usize| grid::with_cell_rng(|rng| rng.next_u64());
    let a = grid::run_cells("order-probe", &items, |i| i.to_string(), draw);
    let b = grid::with_reversed_serial_order(|| {
        grid::run_cells("order-probe", &items, |i| i.to_string(), draw)
    });
    assert_eq!(a, b, "cell RNG streams depend on execution order");
}

/// The observability registry records one stat per cell, in canonical order,
/// with non-trivial work accounting from the trace helpers.
#[test]
fn grid_stats_cover_every_cell_in_canonical_order() {
    let _exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetThreads;
    let scale = Scale::smoke();

    pool::set_threads(2);
    grid::reset_stats();
    render(&["fig01"], &scale);
    let stats: Vec<_> = grid::take_stats()
        .into_iter()
        .filter(|s| s.figure == "fig01")
        .collect();
    assert_eq!(stats.len(), scale.apps.len(), "one cell per app");
    for (i, stat) in stats.iter().enumerate() {
        assert_eq!(stat.index, i, "stats gathered out of canonical order");
        assert_eq!(stat.label, scale.apps[i].name);
        assert!(stat.accesses > 0, "trace helpers must credit work");
        assert!(stat.wall_ms >= 0.0);
    }
}
