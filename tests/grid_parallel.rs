//! Parallel-vs-serial equivalence: the figure grid must produce
//! **byte-identical** `FigureResult` output whatever the worker count, and
//! whatever order the cells actually execute in. This is the test that lets
//! `figures --threads N` exist at all without weakening PR 1's determinism
//! guarantees.
//!
//! Thread-count configuration is process-global (`pool::set_threads`), so
//! every test here serializes on one mutex and restores the default before
//! returning.

use std::sync::Mutex; // simlint: allow(D03) -- serializes tests that flip process-global config

use sim_support::{forall, pool};
use thermometer_bench::{figure_by_id, grid, journal, merge, shard, Journal, Scale};

/// Serializes the tests in this binary: they flip process-global executor
/// configuration.
// simlint: allow(D03) -- test-only serialization lock, not simulator state
static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// Restores the default thread configuration even if an assertion fails.
struct ResetThreads;
impl Drop for ResetThreads {
    fn drop(&mut self) {
        pool::set_threads(0);
    }
}

fn render(ids: &[&str], scale: &Scale) -> String {
    let mut out = String::new();
    for id in ids {
        for fig in figure_by_id(id, scale).expect("known figure id") {
            out.push_str(&fig.to_markdown());
        }
    }
    out
}

/// FNV-1a — the same hash the workload goldens pin trace streams with.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[test]
fn four_threads_match_one_thread_byte_for_byte() {
    let _exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetThreads;
    let scale = Scale::smoke();
    // Per-app figures plus fig17 (per-trace suite grid) so both grid entry
    // points are exercised, plus the extension suites whose cells run
    // several frontends each (trrip head-to-head, hierarchy sweep).
    let ids = ["fig01", "fig09", "fig15", "fig17", "trrip", "hierarchy"];

    pool::set_threads(1);
    let serial = render(&ids, &scale);
    pool::set_threads(4);
    let parallel = render(&ids, &scale);

    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "--threads 4 output differs from --threads 1"
    );
    assert_eq!(
        fnv1a(serial.as_bytes()),
        fnv1a(parallel.as_bytes()),
        "golden hashes differ"
    );
}

/// Regression for the PRNG-sharing hazard: executing the same cells in
/// **reverse** order must gather the same results, which is only true if no
/// RNG (or any other mutable state) is threaded across cells.
#[test]
fn permuted_cell_execution_order_is_invisible() {
    let _exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetThreads;
    let scale = Scale::smoke();
    let ids = ["fig01", "fig06"];

    pool::set_threads(1);
    let forward = render(&ids, &scale);
    let reversed = grid::with_reversed_serial_order(|| render(&ids, &scale));
    assert_eq!(
        forward, reversed,
        "cell results depend on execution order — a cross-cell RNG or \
         shared mutable state leaked into the grid"
    );

    // The per-cell RNG streams themselves are order-independent too.
    let items: Vec<usize> = (0..8).collect();
    let draw = |_: &usize| grid::with_cell_rng(|rng| rng.next_u64());
    let a = grid::run_cells("order-probe", &items, |i| i.to_string(), draw);
    let b = grid::with_reversed_serial_order(|| {
        grid::run_cells("order-probe", &items, |i| i.to_string(), draw)
    });
    assert_eq!(a, b, "cell RNG streams depend on execution order");
}

/// The `--shard i/N` partition the sweep supervisor relies on: for any
/// list length and any N in 1..=8, the shards are **disjoint** (no index
/// appears twice), **exhaustive** (every index appears), and **stable**
/// (recomputing yields the same partition).
#[test]
fn shard_partitions_are_disjoint_exhaustive_and_stable() {
    forall!(
        cases: 96,
        gen: |rng| {
            let len = rng.gen_range(0..48u64) as usize;
            let n = rng.gen_range(1..=8u64) as usize;
            (len, n)
        },
        prop: |&(len, n): &(usize, usize)| {
            let mut seen = vec![0u32; len];
            for number in 1..=n {
                let indices = shard::shard_indices(len, number, n);
                assert_eq!(
                    indices,
                    shard::shard_indices(len, number, n),
                    "partition not stable for len={len}, shard {number}/{n}"
                );
                for k in indices {
                    seen[k] += 1;
                }
            }
            for (k, count) in seen.iter().enumerate() {
                assert_eq!(
                    *count, 1,
                    "index {k} covered {count} times across {n} shard(s) of {len}"
                );
            }
        },
    );
}

/// Builds the journal a `--shard number/count` worker would produce for
/// `ids`, in-process: per-cell hook lines plus hash-stamped figure commits.
fn write_shard_journal(
    dir: &std::path::Path,
    scale: &Scale,
    ids: &[String],
    number: usize,
    count: usize,
) {
    let spec = shard::ShardSpec { number, count };
    let sub = shard::shard_ids(ids, spec);
    let path = merge::shard_journal_path(dir, number);
    let journal = Journal::new(&path);
    journal
        .start(&journal::run_fingerprint(scale, &sub))
        .expect("start shard journal");
    let hook_journal = Journal::new(&path);
    grid::set_cell_hook(Some(Box::new(move |outcome| {
        hook_journal.append_cell(&outcome).expect("journal append");
    })));
    for id in &sub {
        let mut display = String::new();
        let mut markdown = String::new();
        for fig in figure_by_id(id, scale).expect("known figure id") {
            display.push_str(&format!("{fig}\n"));
            markdown.push_str(&fig.to_markdown());
        }
        journal
            .append_figure(id, &display, &markdown)
            .expect("commit figure");
    }
    grid::set_cell_hook(None);
}

/// Satellite of ISSUE 10: merging shard journals is invariant to the
/// order the shards ran in — byte-for-byte. Shards are produced in
/// canonical order and in a permuted order into two directories; the two
/// merges (journal bytes, report, display) must be identical.
#[test]
fn merge_of_permuted_shard_order_is_byte_identical() {
    let _exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetThreads;
    pool::set_threads(1);
    let scale = Scale::smoke();
    let ids: Vec<String> = ["fig01", "fig06", "fig09", "fig15", "fig19"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let shards = 3;
    let base = std::env::temp_dir().join("grid-parallel-merge-tests");
    let canonical = base.join("canonical");
    let permuted = base.join("permuted");
    for dir in [&canonical, &permuted] {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir).expect("scratch dir");
    }

    for number in 1..=shards {
        write_shard_journal(&canonical, &scale, &ids, number, shards);
    }
    for number in [2, 3, 1] {
        write_shard_journal(&permuted, &scale, &ids, number, shards);
    }

    let a = merge::merge_shards(&scale, &ids, shards, &canonical);
    let b = merge::merge_shards(&scale, &ids, shards, &permuted);
    assert!(
        a.is_complete(),
        "canonical merge incomplete: {:?}",
        a.missing
    );
    assert!(
        b.is_complete(),
        "permuted merge incomplete: {:?}",
        b.missing
    );
    assert_eq!(a.journal_bytes(), b.journal_bytes(), "journal bytes differ");
    assert_eq!(a.report(&scale), b.report(&scale), "reports differ");
    assert_eq!(a.display, b.display, "display output differs");
    // And the merged journal is not a near-miss: it replays through the
    // normal resume path under the full-run fingerprint.
    let merged_path = canonical.join("merged.jsonl");
    std::fs::write(&merged_path, a.journal_bytes()).expect("write merged journal");
    let loaded = Journal::new(&merged_path)
        .load(&journal::run_fingerprint(&scale, &ids))
        .expect("read merged journal")
        .expect("fingerprint matches");
    assert_eq!(
        loaded.figures.len(),
        ids.len(),
        "merged journal must replay fully"
    );
}

/// The observability registry records one stat per cell, in canonical order,
/// with non-trivial work accounting from the trace helpers.
#[test]
fn grid_stats_cover_every_cell_in_canonical_order() {
    let _exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetThreads;
    let scale = Scale::smoke();

    pool::set_threads(2);
    grid::reset_stats();
    render(&["fig01"], &scale);
    let stats: Vec<_> = grid::take_stats()
        .into_iter()
        .filter(|s| s.figure == "fig01")
        .collect();
    assert_eq!(stats.len(), scale.apps.len(), "one cell per app");
    for (i, stat) in stats.iter().enumerate() {
        assert_eq!(stat.index, i, "stats gathered out of canonical order");
        assert_eq!(stat.label, scale.apps[i].name);
        assert!(stat.accesses > 0, "trace helpers must credit work");
        assert!(stat.wall_ms >= 0.0);
    }
}
