//! End-to-end battery for `figures sweep` (DESIGN.md §13): a real fleet of
//! worker processes, deterministic process-level fault injection, and
//! byte-compares against a serial `figures` run.
//!
//! Everything here drives the actual `figures` binary
//! (`CARGO_BIN_EXE_figures`) at a tiny scale. The scale env is set
//! explicitly on every command so the host environment cannot skew the
//! fingerprints, and each test works in its own scratch directory, so the
//! tests are free to run in parallel.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// The figure subset the battery sweeps: small enough to be fast, sized so
/// a 4-shard sweep gets uneven shards (2/1/1/1) and wrap-around.
const IDS: [&str; 5] = ["fig01", "fig02", "fig06", "fig07", "fig09"];

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("sweep-supervisor-tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs the `figures` binary with the pinned tiny scale.
fn figures(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(args)
        .env("THERMO_TRACE_LEN", "20000")
        .env("THERMO_CBP_COUNT", "2")
        .env("THERMO_CBP_LEN", "5000")
        .env("THERMO_IPC1_COUNT", "2")
        .env("THERMO_IPC1_LEN", "5000")
        .env("THERMO_APPS", "kafka,python")
        .env("SIM_THREADS", "2")
        .output()
        .expect("spawn figures binary")
}

/// A serial reference run into `dir`; returns (stdout, markdown, journal).
fn serial_reference(dir: &Path) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let md = dir.join("serial.md");
    let journal = dir.join("serial.jsonl");
    let stats = dir.join("serial_stats.json");
    let mut args: Vec<&str> = IDS.to_vec();
    let (md_s, journal_s, stats_s) = (
        md.to_str().unwrap().to_owned(),
        journal.to_str().unwrap().to_owned(),
        stats.to_str().unwrap().to_owned(),
    );
    args.extend([
        "--markdown",
        &md_s,
        "--journal",
        &journal_s,
        "--grid-stats",
        &stats_s,
    ]);
    let out = figures(&args);
    assert!(out.status.success(), "serial run failed: {:?}", out.status);
    (
        out.stdout,
        std::fs::read(&md).expect("serial markdown"),
        std::fs::read(&journal).expect("serial journal"),
    )
}

/// Runs a sweep into `dir` with extra flags; returns the raw output plus
/// the merged markdown/journal bytes.
fn sweep(dir: &Path, shards: &str, extra: &[&str]) -> (Output, Vec<u8>, Vec<u8>) {
    let md = dir.join("sweep.md");
    let journal = dir.join("sweep.jsonl");
    let sweep_dir = dir.join("shards");
    let (md_s, journal_s, dir_s) = (
        md.to_str().unwrap().to_owned(),
        journal.to_str().unwrap().to_owned(),
        sweep_dir.to_str().unwrap().to_owned(),
    );
    let mut args: Vec<&str> = vec!["sweep"];
    args.extend(IDS);
    args.extend([
        "--shards",
        shards,
        "--dir",
        &dir_s,
        "--markdown",
        &md_s,
        "--journal",
        &journal_s,
    ]);
    args.extend(extra);
    let out = figures(&args);
    let md_bytes = std::fs::read(&md).unwrap_or_default();
    let journal_bytes = std::fs::read(&journal).unwrap_or_default();
    (out, md_bytes, journal_bytes)
}

fn assert_identical(
    context: &str,
    (serial_out, serial_md, serial_journal): &(Vec<u8>, Vec<u8>, Vec<u8>),
    (out, md, journal): &(Output, Vec<u8>, Vec<u8>),
) {
    assert!(
        out.status.success(),
        "{context}: sweep exited {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(&out.stdout, serial_out, "{context}: stdout differs");
    assert_eq!(md, serial_md, "{context}: markdown report differs");
    assert_eq!(journal, serial_journal, "{context}: merged journal differs");
}

#[test]
fn four_shard_sweep_is_byte_identical_to_serial() {
    let dir = scratch("clean");
    let reference = serial_reference(&dir);
    let result = sweep(&dir, "4", &[]);
    assert_identical("clean 4-shard sweep", &reference, &result);
}

#[test]
fn sweep_survives_die_torn_and_garbage_workers() {
    let dir = scratch("faulted");
    let reference = serial_reference(&dir);
    // Shard 1 dies mid-cell, shard 2 tears its journal and dies, shard 3
    // claims success it didn't earn — all on the first attempt; restarts
    // are clean and must reconverge to the serial bytes.
    let result = sweep(
        &dir,
        "4",
        &["--proc-fault", "1:0:die:1,2:0:torn:1,3:0:garbage:1"],
    );
    assert_identical("die/torn/garbage sweep", &reference, &result);
    let stats = std::fs::read_to_string(dir.join("shards/sweep_stats.json")).expect("sweep stats");
    assert!(
        stats.contains("\"attempts\": 2"),
        "faulted shards should have restarted once:\n{stats}"
    );
    assert!(
        stats.contains("\"complete\": true"),
        "sweep not complete:\n{stats}"
    );
}

#[test]
fn hung_worker_is_stall_killed_and_redispatched() {
    let dir = scratch("hang");
    let reference = serial_reference(&dir);
    // Shard 2 wedges after its first journaled cell; only the journal
    // watermark can detect it. Tight ticks keep the test fast; the
    // straggler rule is disabled so the kill is attributably a stall.
    let result = sweep(
        &dir,
        "4",
        &[
            "--proc-fault",
            "2:0:hang:1",
            "--tick-ms",
            "10",
            "--stall-ticks",
            "40",
            "--straggler-factor",
            "1000000",
        ],
    );
    assert_identical("hang sweep", &reference, &result);
    let stats = std::fs::read_to_string(dir.join("shards/sweep_stats.json")).expect("sweep stats");
    assert!(
        stats.contains("stalled: no journal progress"),
        "stall kill not recorded:\n{stats}"
    );
}

#[test]
fn poison_shard_quarantines_and_report_degrades_to_incomplete() {
    let dir = scratch("poison");
    serial_reference(&dir);
    // Shard 2 dies on every granted attempt: quarantine, not abort.
    let (out, md, journal) = sweep(
        &dir,
        "4",
        &[
            "--proc-fault",
            "2:0:die:1,2:1:die:1,2:2:die:1",
            "--max-restarts",
            "2",
        ],
    );
    assert_eq!(
        out.status.code(),
        Some(3),
        "degraded sweep must exit 3 (incomplete), got {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8(md).expect("utf-8 report");
    assert!(
        report.contains("> **Status: incomplete**"),
        "missing incomplete stamp:\n{report}"
    );
    // Shard 2 of 4 owns exactly fig02 (index 1) under round-robin over IDS.
    assert!(
        report.contains("`fig02` (shard 2/4)"),
        "missing quarantine line for fig02:\n{report}"
    );
    assert!(
        report.contains("shard quarantined after 3 attempt(s)"),
        "missing supervisor reason:\n{report}"
    );
    // Survivors still render: fig01 is shard 1's and must be present.
    assert!(
        report.contains("fig01"),
        "survivor figures dropped:\n{report}"
    );
    // The merged journal still carries the full-run fingerprint header and
    // the surviving commits, so a serial --resume can finish the rest.
    let journal = String::from_utf8(journal).expect("utf-8 journal");
    assert!(
        journal.starts_with("{\"kind\":\"run\""),
        "journal header missing"
    );
    assert!(
        journal.contains("\"id\":\"fig01\""),
        "surviving commit missing"
    );
    assert!(
        !journal.contains("\"id\":\"fig02\""),
        "quarantined figure leaked"
    );
}

#[test]
fn resume_from_degraded_merge_completes_serially() {
    let dir = scratch("resume-after-degrade");
    let reference = serial_reference(&dir);
    let (out, _, _) = sweep(
        &dir,
        "4",
        &["--proc-fault", "2:0:die:1,2:1:die:1", "--max-restarts", "1"],
    );
    assert_eq!(out.status.code(), Some(3), "expected degraded sweep");
    // Serial --resume from the merged journal recomputes exactly the
    // quarantined remainder; stdout and markdown match the serial run
    // byte-for-byte (journal record order differs, as for any resume).
    let md = dir.join("resumed.md");
    let stats = dir.join("resumed_stats.json");
    let journal_s = dir.join("sweep.jsonl").to_str().unwrap().to_owned();
    let (md_s, stats_s) = (
        md.to_str().unwrap().to_owned(),
        stats.to_str().unwrap().to_owned(),
    );
    let mut args: Vec<&str> = IDS.to_vec();
    args.extend([
        "--resume",
        "--journal",
        &journal_s,
        "--markdown",
        &md_s,
        "--grid-stats",
        &stats_s,
    ]);
    let out = figures(&args);
    assert!(out.status.success(), "resume failed: {:?}", out.status);
    assert_eq!(
        out.stdout, reference.0,
        "resumed stdout differs from serial"
    );
    assert_eq!(
        std::fs::read(&md).expect("resumed markdown"),
        reference.1,
        "resumed markdown differs from serial"
    );
}

#[test]
fn more_shards_than_figures_leaves_empty_shards_clean() {
    let dir = scratch("empty-shards");
    let md = dir.join("one.md");
    let journal = dir.join("one.jsonl");
    let stats = dir.join("one_stats.json");
    let (md_s, journal_s, stats_s) = (
        md.to_str().unwrap().to_owned(),
        journal.to_str().unwrap().to_owned(),
        stats.to_str().unwrap().to_owned(),
    );
    let serial = figures(&[
        "fig01",
        "--markdown",
        &md_s,
        "--journal",
        &journal_s,
        "--grid-stats",
        &stats_s,
    ]);
    assert!(serial.status.success());
    let sweep_md = dir.join("sweep.md");
    let sweep_journal = dir.join("sweep.jsonl");
    let sweep_dir = dir.join("shards");
    let (smd, sj, sd) = (
        sweep_md.to_str().unwrap().to_owned(),
        sweep_journal.to_str().unwrap().to_owned(),
        sweep_dir.to_str().unwrap().to_owned(),
    );
    // 3 shards, 1 figure: shards 2 and 3 own nothing and must settle
    // cleanly (journal header only), not be quarantined.
    let out = figures(&[
        "sweep",
        "fig01",
        "--shards",
        "3",
        "--dir",
        &sd,
        "--markdown",
        &smd,
        "--journal",
        &sj,
    ]);
    assert!(
        out.status.success(),
        "empty shards broke the sweep: {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(out.stdout, serial.stdout, "stdout differs");
    assert_eq!(
        std::fs::read(&sweep_md).expect("sweep md"),
        std::fs::read(&md).expect("serial md"),
        "markdown differs"
    );
    assert_eq!(
        std::fs::read(&sweep_journal).expect("sweep journal"),
        std::fs::read(&journal).expect("serial journal"),
        "journal differs"
    );
}
