//! Figure-pipeline determinism: two runs of the same figures at the same
//! scale must render byte-identical markdown. This guards both the
//! generator/profiler seeding and the submission-order gather of the
//! `grid::run_cells` executor in `bench/src/grid.rs` — a completion-order
//! join would scramble the rows. (`tests/grid_parallel.rs` additionally
//! pins serial-vs-parallel equivalence across thread counts.)

use thermometer_bench::{figure_by_id, Scale};

fn render(ids: &[&str], scale: &Scale) -> String {
    let mut out = String::new();
    for id in ids {
        for fig in figure_by_id(id, scale).expect("registered id") {
            out.push_str(&fig.to_markdown());
            out.push('\n');
        }
    }
    out
}

#[test]
fn figure_pipeline_is_byte_identical_across_runs() {
    // A cross-section of the pipeline: OPT headroom (fig01), temperature
    // distribution (fig06), bypass behaviour (fig09), and the headline
    // speedup comparison (fig15) — each exercising profiling, hint
    // generation, and simulation. Smoke scale keeps the runtime CI-sized.
    let ids = ["fig01", "fig06", "fig09", "fig15"];
    let scale = Scale::smoke();
    let first = render(&ids, &scale);
    let second = render(&ids, &scale);
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "figure markdown differed between identical runs"
    );
}
