#!/usr/bin/env bash
# Bench regression guard: re-runs the guarded bench suites and compares
# medians against the committed baseline (results/bench_baselines.json).
# A benchmark whose median regresses by more than 15% fails the script —
# and CI, which runs this last (see scripts/ci.sh).
#
# Bless flow (after an intentional perf change, on the enforcing machine):
#
#     scripts/bench_check.sh --bless
#     git add results/bench_baselines.json   # commit with the change
#
# One automatic retry absorbs transient machine noise (shared runners can
# throttle a single run well past the tolerance); a *real* regression
# fails twice.
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

suites=(btb_policies frontend hintd)

# The hintd suite measures real wire latency, so it needs a live server on
# loopback: serve from a scratch journal dir, drive the standard hintload
# mix (which writes results/bench_hintd.json), then tear the server down.
run_hintd_suite() {
    local dir rc=0
    dir="$(mktemp -d)"
    ./target/release/hintd --data-dir "$dir/data" --addr-file "$dir/addr" &
    local pid=$!
    for _ in $(seq 1 200); do
        [[ -s "$dir/addr" ]] && break
        sleep 0.05
    done
    ./target/release/hintload --addr-file "$dir/addr" --out results >/dev/null || rc=$?
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    rm -rf "$dir"
    return "$rc"
}

run_suites() {
    cargo build --quiet --release -p thermometer-bench -p hintd
    for s in "${suites[@]}"; do
        if [[ "$s" == hintd ]]; then
            run_hintd_suite
        else
            cargo bench -p thermometer-bench --bench "$s" >/dev/null
        fi
    done
}

echo "==> bench suites: ${suites[*]}"
run_suites

if [[ "${1:-}" == "--bless" ]]; then
    cargo run --quiet --release -p thermometer-bench --bin bench_check -- --bless
    exit 0
fi

if ! cargo run --quiet --release -p thermometer-bench --bin bench_check; then
    echo "==> regression reported; re-running once to rule out machine noise"
    run_suites
    cargo run --quiet --release -p thermometer-bench --bin bench_check
fi
echo "bench_check green."
