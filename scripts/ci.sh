#!/usr/bin/env bash
# Full offline CI gate: format, lint, build, test.
#
# The workspace has no external crate dependencies (see crates/sim-support),
# so everything here must succeed with the network unplugged. CARGO_NET_OFFLINE
# is exported to make an accidental dependency regression fail fast instead of
# hanging on a registry fetch.
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export CARGO_TERM_COLOR="${CARGO_TERM_COLOR:-always}"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> simlint (determinism, safety, registry & hot-path rules)"
cargo run -p simlint --release -- --format json
mkdir -p results
cargo run -p simlint --release -- --format sarif > results/simlint.sarif

echo "==> simlint --self-check (seeded-mutation battery)"
cargo run -p simlint --release -- --self-check

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> figures --threads 2 smoke (parallel path, byte-compared against serial)"
smoke_env=(THERMO_TRACE_LEN=40000 THERMO_CBP_COUNT=4 THERMO_CBP_LEN=10000
           THERMO_IPC1_COUNT=4 THERMO_IPC1_LEN=10000 THERMO_APPS=kafka,python)
env "${smoke_env[@]}" ./target/release/figures fig01 fig09 fig17 trrip hierarchy \
    --threads 1 --markdown /tmp/ci_serial.md --grid-stats /tmp/ci_grid_serial.json >/dev/null
env "${smoke_env[@]}" ./target/release/figures fig01 fig09 fig17 trrip hierarchy \
    --threads 2 --markdown /tmp/ci_parallel.md --grid-stats /tmp/ci_grid_parallel.json >/dev/null
cmp /tmp/ci_serial.md /tmp/ci_parallel.md

echo "==> crash-resume (kill mid-grid via fault plan; --resume must be byte-identical)"
ft_dir="$(mktemp -d)"
trap 'rm -rf "$ft_dir"' EXIT
# Reference: a fault-free run of the same grid.
env "${smoke_env[@]}" ./target/release/figures fig01 fig09 fig17 \
    --threads 2 --markdown "$ft_dir/ref.md" --grid-stats "$ft_dir/ref_stats.json" \
    --journal "$ft_dir/ref_journal.jsonl" > "$ft_dir/ref.out"
# Crash: the injected plan kills the process after 3 journaled cells (exit 86).
crash_rc=0
env "${smoke_env[@]}" ./target/release/figures fig01 fig09 fig17 \
    --threads 2 --markdown "$ft_dir/resumed.md" --grid-stats "$ft_dir/crash_stats.json" \
    --journal "$ft_dir/journal.jsonl" --fault-plan exit-after=3 \
    > /dev/null 2> "$ft_dir/crash.err" || crash_rc=$?
if [ "$crash_rc" -ne 86 ]; then
    echo "expected the fault plan to kill the run with exit 86, got $crash_rc" >&2
    cat "$ft_dir/crash.err" >&2
    exit 1
fi
# Resume at a *different* thread width: journaled figures replay byte-for-byte,
# the rest recompute, and both report and stdout must match the reference.
env "${smoke_env[@]}" ./target/release/figures fig01 fig09 fig17 \
    --threads 4 --resume --markdown "$ft_dir/resumed.md" \
    --grid-stats "$ft_dir/resumed_stats.json" --journal "$ft_dir/journal.jsonl" \
    > "$ft_dir/resumed.out"
cmp "$ft_dir/ref.md" "$ft_dir/resumed.md"
cmp "$ft_dir/ref.out" "$ft_dir/resumed.out"

echo "==> hintd loopback smoke (serve -> load -> kill -9 -> restart -> byte-identical dumps)"
hintd_dir="$ft_dir/hintd"
mkdir -p "$hintd_dir"
hintd_pid=""
trap 'if [ -n "$hintd_pid" ]; then kill "$hintd_pid" 2>/dev/null || true; fi; rm -rf "$ft_dir"' EXIT
wait_addr_file() {
    for _ in $(seq 1 200); do
        [ -s "$1" ] && return 0
        sleep 0.05
    done
    echo "hintd never published its address to $1" >&2
    return 1
}
./target/release/hintd --data-dir "$hintd_dir/data" --addr-file "$hintd_dir/addr1" &
hintd_pid=$!
wait_addr_file "$hintd_dir/addr1"
BENCH_ITERS=1 BENCH_WARMUP=0 ./target/release/hintload --addr-file "$hintd_dir/addr1" \
    --apps 3 --ops 80 --records 800 --out "$hintd_dir" \
    --dump-tables "$hintd_dir/before.dump" >/dev/null
# A real SIGKILL: recovery must come from the fsync'd journals alone.
kill -9 "$hintd_pid"
wait "$hintd_pid" 2>/dev/null || true
./target/release/hintd --data-dir "$hintd_dir/data" --addr-file "$hintd_dir/addr2" &
hintd_pid=$!
wait_addr_file "$hintd_dir/addr2"
./target/release/hintload --addr-file "$hintd_dir/addr2" \
    --apps 3 --dump-only --dump-tables "$hintd_dir/after.dump" >/dev/null
kill "$hintd_pid" 2>/dev/null || true
wait "$hintd_pid" 2>/dev/null || true
hintd_pid=""
cmp "$hintd_dir/before.dump" "$hintd_dir/after.dump"

echo "==> bench regression guard (>15% median regression vs results/bench_baselines.json fails)"
./scripts/bench_check.sh

echo "==> quarantine (a poisoned cell is dropped with a reason; siblings complete)"
env "${smoke_env[@]}" ./target/release/figures fig01 \
    --threads 2 --quarantine --max-retries 1 \
    --fault-plan seed=1,panic=fig01:1:poison \
    --markdown "$ft_dir/quarantine.md" --grid-stats "$ft_dir/quarantine_stats.json" \
    --journal "$ft_dir/quarantine_journal.jsonl" > /dev/null
grep -q '"class": "poison"' "$ft_dir/quarantine_stats.json"
grep -q '"cells_quarantined": 1' "$ft_dir/quarantine_stats.json"

echo "CI green."
