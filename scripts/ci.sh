#!/usr/bin/env bash
# Full offline CI gate: format, lint, build, test.
#
# The workspace has no external crate dependencies (see crates/sim-support),
# so everything here must succeed with the network unplugged. CARGO_NET_OFFLINE
# is exported to make an accidental dependency regression fail fast instead of
# hanging on a registry fetch.
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export CARGO_TERM_COLOR="${CARGO_TERM_COLOR:-always}"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --quiet

echo "CI green."
