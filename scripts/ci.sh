#!/usr/bin/env bash
# Full offline CI gate: format, lint, build, test.
#
# The workspace has no external crate dependencies (see crates/sim-support),
# so everything here must succeed with the network unplugged. CARGO_NET_OFFLINE
# is exported to make an accidental dependency regression fail fast instead of
# hanging on a registry fetch.
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export CARGO_TERM_COLOR="${CARGO_TERM_COLOR:-always}"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> simlint (determinism & safety rules)"
cargo run -p simlint --release -- --format json

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> figures --threads 2 smoke (parallel path, byte-compared against serial)"
smoke_env=(THERMO_TRACE_LEN=40000 THERMO_CBP_COUNT=4 THERMO_CBP_LEN=10000
           THERMO_IPC1_COUNT=4 THERMO_IPC1_LEN=10000 THERMO_APPS=kafka,python)
env "${smoke_env[@]}" ./target/release/figures fig01 fig09 fig17 \
    --threads 1 --markdown /tmp/ci_serial.md --grid-stats /tmp/ci_grid_serial.json >/dev/null
env "${smoke_env[@]}" ./target/release/figures fig01 fig09 fig17 \
    --threads 2 --markdown /tmp/ci_parallel.md --grid-stats /tmp/ci_grid_parallel.json >/dev/null
cmp /tmp/ci_serial.md /tmp/ci_parallel.md

echo "CI green."
