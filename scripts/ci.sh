#!/usr/bin/env bash
# Full offline CI gate: format, lint, build, test.
#
# The workspace has no external crate dependencies (see crates/sim-support),
# so everything here must succeed with the network unplugged. CARGO_NET_OFFLINE
# is exported to make an accidental dependency regression fail fast instead of
# hanging on a registry fetch.
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export CARGO_TERM_COLOR="${CARGO_TERM_COLOR:-always}"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> simlint (determinism, safety, registry & hot-path rules)"
cargo run -p simlint --release -- --format json
mkdir -p results
cargo run -p simlint --release -- --format sarif > results/simlint.sarif

echo "==> simlint --self-check (seeded-mutation battery)"
cargo run -p simlint --release -- --self-check

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> figures --threads 2 smoke (parallel path, byte-compared against serial)"
smoke_env=(THERMO_TRACE_LEN=40000 THERMO_CBP_COUNT=4 THERMO_CBP_LEN=10000
           THERMO_IPC1_COUNT=4 THERMO_IPC1_LEN=10000 THERMO_APPS=kafka,python)
env "${smoke_env[@]}" ./target/release/figures fig01 fig09 fig17 trrip hierarchy \
    --threads 1 --markdown /tmp/ci_serial.md --grid-stats /tmp/ci_grid_serial.json >/dev/null
env "${smoke_env[@]}" ./target/release/figures fig01 fig09 fig17 trrip hierarchy \
    --threads 2 --markdown /tmp/ci_parallel.md --grid-stats /tmp/ci_grid_parallel.json >/dev/null
cmp /tmp/ci_serial.md /tmp/ci_parallel.md

echo "==> crash-resume (kill mid-grid via fault plan; --resume must be byte-identical)"
ft_dir="$(mktemp -d)"
trap 'rm -rf "$ft_dir"' EXIT
# Reference: a fault-free run of the same grid.
env "${smoke_env[@]}" ./target/release/figures fig01 fig09 fig17 \
    --threads 2 --markdown "$ft_dir/ref.md" --grid-stats "$ft_dir/ref_stats.json" \
    --journal "$ft_dir/ref_journal.jsonl" > "$ft_dir/ref.out"
# Crash: the injected plan kills the process after 3 journaled cells (exit 86).
crash_rc=0
env "${smoke_env[@]}" ./target/release/figures fig01 fig09 fig17 \
    --threads 2 --markdown "$ft_dir/resumed.md" --grid-stats "$ft_dir/crash_stats.json" \
    --journal "$ft_dir/journal.jsonl" --fault-plan exit-after=3 \
    > /dev/null 2> "$ft_dir/crash.err" || crash_rc=$?
if [ "$crash_rc" -ne 86 ]; then
    echo "expected the fault plan to kill the run with exit 86, got $crash_rc" >&2
    cat "$ft_dir/crash.err" >&2
    exit 1
fi
# Resume at a *different* thread width: journaled figures replay byte-for-byte,
# the rest recompute, and both report and stdout must match the reference.
env "${smoke_env[@]}" ./target/release/figures fig01 fig09 fig17 \
    --threads 4 --resume --markdown "$ft_dir/resumed.md" \
    --grid-stats "$ft_dir/resumed_stats.json" --journal "$ft_dir/journal.jsonl" \
    > "$ft_dir/resumed.out"
cmp "$ft_dir/ref.md" "$ft_dir/resumed.md"
cmp "$ft_dir/ref.out" "$ft_dir/resumed.out"

echo "==> hintd loopback smoke (serve -> load -> kill -9 -> restart -> byte-identical dumps)"
hintd_dir="$ft_dir/hintd"
mkdir -p "$hintd_dir"
hintd_pid=""
trap 'if [ -n "$hintd_pid" ]; then kill "$hintd_pid" 2>/dev/null || true; fi; rm -rf "$ft_dir"' EXIT
wait_addr_file() {
    for _ in $(seq 1 200); do
        [ -s "$1" ] && return 0
        sleep 0.05
    done
    echo "hintd never published its address to $1" >&2
    return 1
}
./target/release/hintd --data-dir "$hintd_dir/data" --addr-file "$hintd_dir/addr1" &
hintd_pid=$!
wait_addr_file "$hintd_dir/addr1"
BENCH_ITERS=1 BENCH_WARMUP=0 ./target/release/hintload --addr-file "$hintd_dir/addr1" \
    --apps 3 --ops 80 --records 800 --out "$hintd_dir" \
    --dump-tables "$hintd_dir/before.dump" >/dev/null
# A real SIGKILL: recovery must come from the fsync'd journals alone.
kill -9 "$hintd_pid"
wait "$hintd_pid" 2>/dev/null || true
./target/release/hintd --data-dir "$hintd_dir/data" --addr-file "$hintd_dir/addr2" &
hintd_pid=$!
wait_addr_file "$hintd_dir/addr2"
./target/release/hintload --addr-file "$hintd_dir/addr2" \
    --apps 3 --dump-only --dump-tables "$hintd_dir/after.dump" >/dev/null
kill "$hintd_pid" 2>/dev/null || true
wait "$hintd_pid" 2>/dev/null || true
hintd_pid=""
cmp "$hintd_dir/before.dump" "$hintd_dir/after.dump"

echo "==> bench regression guard (>15% median regression vs results/bench_baselines.json fails)"
./scripts/bench_check.sh

echo "==> quarantine (a poisoned cell is dropped with a reason; siblings complete)"
env "${smoke_env[@]}" ./target/release/figures fig01 \
    --threads 2 --quarantine --max-retries 1 \
    --fault-plan seed=1,panic=fig01:1:poison \
    --markdown "$ft_dir/quarantine.md" --grid-stats "$ft_dir/quarantine_stats.json" \
    --journal "$ft_dir/quarantine_journal.jsonl" > /dev/null
grep -q '"class": "poison"' "$ft_dir/quarantine_stats.json"
grep -q '"cells_quarantined": 1' "$ft_dir/quarantine_stats.json"

echo "==> sharded sweep (4 shards, kill -9 one worker mid-sweep, restart, merge == serial bytes)"
sweep_ids=(fig01 fig09 fig17 trrip hierarchy)
sw_dir="$ft_dir/sweep"
mkdir -p "$sw_dir"
env "${smoke_env[@]}" ./target/release/figures "${sweep_ids[@]}" \
    --threads 2 --markdown "$sw_dir/serial.md" --grid-stats "$sw_dir/serial_stats.json" \
    --journal "$sw_dir/serial.jsonl" > "$sw_dir/serial.out" 2>/dev/null
# Shard 2's first attempt wedges after 2 journaled cells (armed hang), so
# the worker is guaranteed alive for the external SIGKILL. The stall
# timeout is huge: only the kill -9 can clear the wedged shard.
sweep_pid=""
trap 'if [ -n "$sweep_pid" ]; then kill "$sweep_pid" 2>/dev/null || true; fi; rm -rf "$ft_dir"' EXIT
env "${smoke_env[@]}" ./target/release/figures sweep "${sweep_ids[@]}" \
    --shards 4 --dir "$sw_dir/shards" --threads 2 \
    --proc-fault 2:0:hang:2 --stall-ticks 1000000 \
    --markdown "$sw_dir/sweep.md" --journal "$sw_dir/sweep.jsonl" \
    > "$sw_dir/sweep.out" 2> "$sw_dir/sweep.log" &
sweep_pid=$!
# Wait until shard 2 journaled both its cells (header + 2 lines): the hang
# has engaged and the worker pid is stable — then kill -9 it.
for _ in $(seq 1 600); do
    if [ -f "$sw_dir/shards/shard-2.jsonl" ] \
        && [ "$(wc -l < "$sw_dir/shards/shard-2.jsonl")" -ge 3 ]; then
        break
    fi
    sleep 0.1
done
[ "$(wc -l < "$sw_dir/shards/shard-2.jsonl")" -ge 3 ]
kill -9 "$(cat "$sw_dir/shards/shard-2.pid")"
# The supervisor sees the signal death, restarts shard 2 with --resume
# (attempt 1 has no armed fault), and the sweep completes: exit 0 and all
# three merged artifacts byte-identical to the serial run.
wait "$sweep_pid"
sweep_pid=""
cmp "$sw_dir/serial.out" "$sw_dir/sweep.out"
cmp "$sw_dir/serial.md" "$sw_dir/sweep.md"
cmp "$sw_dir/serial.jsonl" "$sw_dir/sweep.jsonl"
grep -q 'killed by a signal' "$sw_dir/shards/sweep_stats.json"

echo "CI green."
